// Differential tests of the composable sink pipeline (grouped
// aggregation, ORDER BY, LIMIT) against a BaselineMatcher-derived
// oracle: the oracle enumerates raw match rows through an independent
// binary-join backtracking engine, and the reference aggregation / sort
// are re-implemented here from scratch with the documented semantics
// (aggregates skip nulls, nulls group together and order last under
// ASC, ties break by the remaining columns ascending). Every query runs
// at 1 and 4 threads on 3 random power-law seeds, so the parallel
// partial-merge path (per-worker aggregate tables folded at Execute
// end) is covered against the serial path and the oracle.
//
// Double-valued properties are generated dyadic (multiples of 0.25) so
// sums are exact in any accumulation order and results compare exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "baseline/flat_adj_engine.h"
#include "baseline/matcher.h"
#include "core/database.h"
#include "datagen/power_law_generator.h"
#include "util/rng.h"

namespace aplus {
namespace {

using Row = std::vector<Value>;

// Engine-side collector (OnBatch fires from one thread at a time for
// staged queries, but the raw-projection arm runs workers concurrently).
struct RowCollector : RowConsumer {
  std::mutex mu;
  std::vector<Row> rows;
  void OnBatch(const RowBatch& batch) override {
    std::lock_guard<std::mutex> lock(mu);
    for (uint32_t r = 0; r < batch.num_rows(); ++r) {
      Row row;
      for (size_t c = 0; c < batch.num_columns(); ++c) row.push_back(batch.Cell(c, r));
      rows.push_back(std::move(row));
    }
  }
};

// One RETURN item of the reference evaluator.
struct RefItem {
  AggFn fn = AggFn::kNone;
  bool star = false;
  std::function<Value(const MatchState&)> get;  // unused when star
};

struct RefOrder {
  int item = -1;
  bool desc = false;
};

int CompareValues(const Value& a, const Value& b) { return Value::Compare(a, b); }

// Mirrors the engine's ordering contract: configured keys first
// (DESC flips, nulls = +inf), then every remaining column ascending.
bool RefRowLess(const Row& a, const Row& b, const std::vector<RefOrder>& order) {
  for (const RefOrder& key : order) {
    int cmp = CompareValues(a[key.item], b[key.item]);
    if (key.desc) cmp = -cmp;
    if (cmp != 0) return cmp < 0;
  }
  for (size_t c = 0; c < a.size(); ++c) {
    bool is_key = false;
    for (const RefOrder& key : order) {
      if (key.item == static_cast<int>(c)) {
        is_key = true;
        break;
      }
    }
    if (is_key) continue;
    int cmp = CompareValues(a[c], b[c]);
    if (cmp != 0) return cmp < 0;
  }
  return false;
}

// Reference aggregation over the oracle's raw rows (one cell per
// RefItem, aggregates fed their argument cell).
std::vector<Row> RefAggregate(const std::vector<Row>& raw, const std::vector<RefItem>& items) {
  std::vector<int> key_items;
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].fn == AggFn::kNone) key_items.push_back(static_cast<int>(i));
  }
  struct Acc {
    int64_t int_sum = 0;
    double dbl_sum = 0.0;
    int64_t count = 0;
    Value min, max;
  };
  auto key_less = [&](const Row& a, const Row& b) {
    for (int k : key_items) {
      int cmp = CompareValues(a[k], b[k]);
      if (cmp != 0) return cmp < 0;
    }
    return false;
  };
  std::map<Row, std::vector<Acc>, decltype(key_less)> groups(key_less);
  for (const Row& row : raw) {
    auto [it, inserted] = groups.try_emplace(row, std::vector<Acc>(items.size()));
    std::vector<Acc>& accs = it->second;
    for (size_t i = 0; i < items.size(); ++i) {
      const RefItem& item = items[i];
      if (item.fn == AggFn::kNone) continue;
      Acc& acc = accs[i];
      if (item.star) {
        acc.count++;
        continue;
      }
      const Value& v = row[i];
      if (v.is_null()) continue;
      acc.count++;
      if (v.type() == ValueType::kDouble) {
        acc.dbl_sum += v.AsDouble();
      } else {
        acc.int_sum += v.AsInt64();
        acc.dbl_sum += static_cast<double>(v.AsInt64());
      }
      if (acc.min.is_null() || CompareValues(v, acc.min) < 0) acc.min = v;
      if (acc.max.is_null() || CompareValues(v, acc.max) > 0) acc.max = v;
    }
  }
  // A global aggregate emits one row even on empty input.
  if (key_items.empty() && groups.empty()) {
    groups.try_emplace(raw.empty() ? Row(items.size()) : raw.front(),
                       std::vector<Acc>(items.size()));
  }
  std::vector<Row> out;
  for (const auto& [key, accs] : groups) {
    Row row;
    for (size_t i = 0; i < items.size(); ++i) {
      const RefItem& item = items[i];
      const Acc& acc = accs[i];
      switch (item.fn) {
        case AggFn::kNone:
          row.push_back(key[i]);
          break;
        case AggFn::kCount:
          row.push_back(Value::Int64(acc.count));
          break;
        case AggFn::kSum:
          if (acc.count == 0) {
            row.push_back(Value::Null());
          } else if (!acc.min.is_null() && acc.min.type() == ValueType::kDouble) {
            row.push_back(Value::Double(acc.dbl_sum));
          } else {
            row.push_back(Value::Int64(acc.int_sum));
          }
          break;
        case AggFn::kMin:
          row.push_back(acc.min);
          break;
        case AggFn::kMax:
          row.push_back(acc.max);
          break;
        case AggFn::kAvg:
          row.push_back(acc.count == 0
                            ? Value::Null()
                            : Value::Double(acc.dbl_sum / static_cast<double>(acc.count)));
          break;
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  return out + ")";
}

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].is_null() != b[i].is_null()) return false;
    if (!a[i].is_null() && CompareValues(a[i], b[i]) != 0) return false;
  }
  return true;
}

class AggregateDiffTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  AggregateDiffTest() {
    Graph graph;
    PowerLawParams params;
    params.num_vertices = 350;
    params.avg_degree = 4.0;
    params.seed = GetParam();
    GeneratePowerLawGraph(params, &graph);
    amt_key_ = graph.AddEdgeProperty("amt", ValueType::kInt64);
    w_key_ = graph.AddEdgeProperty("w", ValueType::kDouble);
    grp_key_ = graph.AddVertexProperty("grp", ValueType::kInt64);
    tag_key_ = graph.AddVertexProperty("tag", ValueType::kString);
    Rng rng(GetParam() * 7 + 3);
    PropertyColumn* amt = graph.edge_props().mutable_column(amt_key_);
    PropertyColumn* w = graph.edge_props().mutable_column(w_key_);
    for (edge_id_t e = 0; e < graph.num_edges(); ++e) {
      if (rng.NextBounded(8) == 0) {
        amt->SetNull(e);  // ~12% nulls exercise the skip-null paths
      } else {
        amt->SetInt64(e, static_cast<int64_t>(rng.NextBounded(500)));
      }
      // Dyadic doubles: order-independent exact sums.
      w->SetDouble(e, static_cast<double>(rng.NextBounded(4000)) * 0.25);
    }
    PropertyColumn* grp = graph.vertex_props().mutable_column(grp_key_);
    PropertyColumn* tag = graph.vertex_props().mutable_column(tag_key_);
    for (vertex_id_t v = 0; v < graph.num_vertices(); ++v) {
      if (rng.NextBounded(6) == 0) {
        grp->SetNull(v);  // null group keys form their own group
      } else {
        grp->SetInt64(v, static_cast<int64_t>(rng.NextBounded(7)));
      }
      tag->SetString(v, "t" + std::to_string(rng.NextBounded(5)));
    }
    db_ = std::make_unique<Database>(std::move(graph));
    db_->BuildPrimaryIndexes();
    elabel_ = db_->graph().catalog().FindEdgeLabel("E");
    engine_ = std::make_unique<FlatAdjEngine>(&db_->graph());
  }

  QueryGraph OneHop() const {
    QueryGraph q;
    int a = q.AddVertex("a");
    int b = q.AddVertex("b");
    q.AddEdge(a, b, elabel_, "r");
    return q;
  }

  QueryGraph TwoHop() const {
    QueryGraph q;
    int a = q.AddVertex("a");
    int b = q.AddVertex("b");
    int c = q.AddVertex("c");
    q.AddEdge(a, b, elabel_, "r1");
    q.AddEdge(b, c, elabel_, "r2");
    return q;
  }

  // Raw oracle rows: one cell per RefItem (aggregate items carry their
  // argument's value; COUNT(*) cells stay null).
  std::vector<Row> OracleRows(const QueryGraph& q, const std::vector<RefItem>& items) const {
    std::vector<Row> rows;
    QueryGraph pattern = q;  // matcher mutates nothing, but keep a copy for clarity
    BaselineMatcher<FlatAdjEngine> matcher(engine_.get(), &db_->graph(), &pattern);
    matcher.Enumerate([&](const MatchState& m) {
      Row row;
      for (const RefItem& item : items) {
        row.push_back(item.star ? Value::Null() : item.get(m));
      }
      rows.push_back(std::move(row));
    });
    return rows;
  }

  // Runs `text` through the serving path at 1 and 4 threads and checks
  // the rows against the reference pipeline (aggregate if any item
  // aggregates, order, limit).
  void CheckQuery(const std::string& text, const QueryGraph& oracle_query,
                  const std::vector<RefItem>& items, const std::vector<RefOrder>& order,
                  int64_t limit = -1, bool distinct = false) {
    std::vector<Row> want = OracleRows(oracle_query, items);
    bool has_agg = false;
    for (const RefItem& item : items) has_agg |= item.fn != AggFn::kNone;
    if (has_agg) want = RefAggregate(want, items);
    if (distinct) {
      // Reference dedup: canonical sort, then drop equal neighbours.
      std::sort(want.begin(), want.end(),
                [&](const Row& a, const Row& b) { return RefRowLess(a, b, {}); });
      want.erase(std::unique(want.begin(), want.end(),
                             [&](const Row& a, const Row& b) { return RowsEqual(a, b); }),
                 want.end());
    }
    std::sort(want.begin(), want.end(),
              [&](const Row& a, const Row& b) { return RefRowLess(a, b, order); });
    if (limit >= 0 && static_cast<size_t>(limit) < want.size()) {
      want.resize(static_cast<size_t>(limit));
    }

    Session session(db_.get());
    PreparedQuery* prepared = session.Prepare(text);
    ASSERT_TRUE(prepared->ok()) << text << ": " << prepared->error();
    for (int threads : {1, 4}) {
      RowCollector rc;
      QueryOutcome out = prepared->Execute(&rc, threads);
      ASSERT_TRUE(out.ok()) << text << ": " << out.error;
      EXPECT_EQ(out.rows, rc.rows.size()) << text;
      std::vector<Row> got = std::move(rc.rows);
      if (order.empty()) {
        // Unordered queries: compare as canonically sorted multisets.
        auto canon = [&](const Row& a, const Row& b) { return RefRowLess(a, b, {}); };
        std::sort(got.begin(), got.end(), canon);
        std::sort(want.begin(), want.end(), canon);
      }
      ASSERT_EQ(got.size(), want.size()) << text << " threads=" << threads;
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_TRUE(RowsEqual(got[i], want[i]))
            << text << " threads=" << threads << " row " << i << ": got "
            << RowToString(got[i]) << ", want " << RowToString(want[i]);
      }
    }
  }

  // Cell extractors over the oracle's MatchState.
  RefItem VertexId(int var) const {
    return {AggFn::kNone, false,
            [var](const MatchState& m) { return Value::Int64(m.v[var]); }};
  }
  RefItem VertexProp(int var, prop_key_t key, AggFn fn = AggFn::kNone) const {
    const PropertyColumn* col = db_->graph().vertex_props().column(key);
    return {fn, false, [col, var](const MatchState& m) { return col->Get(m.v[var]); }};
  }
  RefItem EdgeProp(int edge, prop_key_t key, AggFn fn = AggFn::kNone) const {
    const PropertyColumn* col = db_->graph().edge_props().column(key);
    return {fn, false, [col, edge](const MatchState& m) { return col->Get(m.e[edge]); }};
  }
  RefItem CountStar() const { return {AggFn::kCount, true, nullptr}; }
  RefItem Agg(RefItem base, AggFn fn) const {
    base.fn = fn;
    return base;
  }

  prop_key_t amt_key_ = kInvalidPropKey;
  prop_key_t w_key_ = kInvalidPropKey;
  prop_key_t grp_key_ = kInvalidPropKey;
  prop_key_t tag_key_ = kInvalidPropKey;
  label_t elabel_ = kInvalidLabel;
  std::unique_ptr<Database> db_;
  std::unique_ptr<FlatAdjEngine> engine_;
};

TEST_P(AggregateDiffTest, GlobalAggregatesEveryFunction) {
  CheckQuery(
      "MATCH (a)-[r:E]->(b) "
      "RETURN COUNT(*), COUNT(r.amt), SUM(r.amt), MIN(r.amt), MAX(r.amt), AVG(r.amt)",
      OneHop(),
      {CountStar(), EdgeProp(0, amt_key_, AggFn::kCount), EdgeProp(0, amt_key_, AggFn::kSum),
       EdgeProp(0, amt_key_, AggFn::kMin), EdgeProp(0, amt_key_, AggFn::kMax),
       EdgeProp(0, amt_key_, AggFn::kAvg)},
      {});
}

TEST_P(AggregateDiffTest, GlobalDoubleAggregates) {
  CheckQuery("MATCH (a)-[r:E]->(b) RETURN SUM(r.w), MIN(r.w), MAX(r.w), AVG(r.w)", OneHop(),
             {EdgeProp(0, w_key_, AggFn::kSum), EdgeProp(0, w_key_, AggFn::kMin),
              EdgeProp(0, w_key_, AggFn::kMax), EdgeProp(0, w_key_, AggFn::kAvg)},
             {});
}

TEST_P(AggregateDiffTest, GroupByIntKeyWithNulls) {
  CheckQuery(
      "MATCH (a)-[r:E]->(b) RETURN a.grp, COUNT(*), SUM(r.amt), AVG(r.w)", OneHop(),
      {VertexProp(0, grp_key_), CountStar(), EdgeProp(0, amt_key_, AggFn::kSum),
       EdgeProp(0, w_key_, AggFn::kAvg)},
      {});
}

TEST_P(AggregateDiffTest, GroupByStringKey) {
  CheckQuery("MATCH (a)-[r:E]->(b) RETURN b.tag, COUNT(*), MIN(r.amt), MAX(r.w)", OneHop(),
             {VertexProp(1, tag_key_), CountStar(), EdgeProp(0, amt_key_, AggFn::kMin),
              EdgeProp(0, w_key_, AggFn::kMax)},
             {});
}

TEST_P(AggregateDiffTest, GroupByTwoKeys) {
  CheckQuery("MATCH (a)-[r:E]->(b) RETURN a.grp, b.tag, COUNT(r.amt)", OneHop(),
             {VertexProp(0, grp_key_), VertexProp(1, tag_key_),
              EdgeProp(0, amt_key_, AggFn::kCount)},
             {});
}

TEST_P(AggregateDiffTest, RawProjectionOrderByLimit) {
  // Nulls in the DESC key order first (null = +inf, direction flipped);
  // ties break on the remaining columns.
  CheckQuery("MATCH (a)-[r:E]->(b) RETURN a, b, r.amt ORDER BY r.amt DESC, a LIMIT 17",
             OneHop(), {VertexId(0), VertexId(1), EdgeProp(0, amt_key_)},
             {{2, true}, {0, false}}, 17);
}

TEST_P(AggregateDiffTest, RawProjectionOrderByAscendingNoLimit) {
  CheckQuery("MATCH (a)-[r:E]->(b) RETURN b, r.w ORDER BY r.w", OneHop(),
             {VertexId(1), EdgeProp(0, w_key_)}, {{1, false}});
}

TEST_P(AggregateDiffTest, GroupByOrderByLimitTopK) {
  CheckQuery(
      "MATCH (a)-[r:E]->(b) RETURN a.grp, COUNT(*) ORDER BY COUNT(*) DESC, a.grp LIMIT 3",
      OneHop(), {VertexProp(0, grp_key_), CountStar()}, {{1, true}, {0, false}}, 3);
}

TEST_P(AggregateDiffTest, GroupByOrderByAggregateAverage) {
  CheckQuery("MATCH (a)-[r:E]->(b) RETURN a.grp, AVG(r.amt) ORDER BY AVG(r.amt), a.grp",
             OneHop(), {VertexProp(0, grp_key_), EdgeProp(0, amt_key_, AggFn::kAvg)},
             {{1, false}, {0, false}});
}

TEST_P(AggregateDiffTest, TwoHopGroupedTopK) {
  CheckQuery(
      "MATCH (a)-[r1:E]->(b)-[r2:E]->(c) "
      "RETURN b, COUNT(*), MAX(r2.amt) ORDER BY COUNT(*) DESC, b LIMIT 10",
      TwoHop(), {VertexId(1), CountStar(), EdgeProp(1, amt_key_, AggFn::kMax)},
      {{1, true}, {0, false}}, 10);
}

TEST_P(AggregateDiffTest, TwoHopCountStarMatchesMatcher) {
  CheckQuery("MATCH (a)-[r1:E]->(b)-[r2:E]->(c) RETURN COUNT(*)", TwoHop(), {CountStar()},
             {});
}

TEST_P(AggregateDiffTest, LimitZeroAndOversized) {
  CheckQuery("MATCH (a)-[r:E]->(b) RETURN a.grp, COUNT(*) ORDER BY a.grp LIMIT 0", OneHop(),
             {VertexProp(0, grp_key_), CountStar()}, {{0, false}}, 0);
  CheckQuery("MATCH (a)-[r:E]->(b) RETURN a.grp, COUNT(*) ORDER BY a.grp LIMIT 100000",
             OneHop(), {VertexProp(0, grp_key_), CountStar()}, {{0, false}}, 100000);
}

TEST_P(AggregateDiffTest, DistinctMidVertexOneHop) {
  CheckQuery("MATCH (a)-[r:E]->(b) RETURN DISTINCT b", OneHop(), {VertexId(1)}, {},
             /*limit=*/-1, /*distinct=*/true);
}

TEST_P(AggregateDiffTest, DistinctPropertyWithNulls) {
  // grp has ~17% nulls; DISTINCT must keep exactly one null row.
  CheckQuery("MATCH (a)-[r:E]->(b) RETURN DISTINCT a.grp", OneHop(),
             {VertexProp(0, grp_key_)}, {}, /*limit=*/-1, /*distinct=*/true);
}

TEST_P(AggregateDiffTest, DistinctPairOrderByLimit) {
  CheckQuery(
      "MATCH (a)-[r1:E]->(b)-[r2:E]->(c) "
      "RETURN DISTINCT a.grp, c.grp ORDER BY a.grp, c.grp LIMIT 12",
      TwoHop(), {VertexProp(0, grp_key_), VertexProp(2, grp_key_)},
      {{0, false}, {1, false}}, 12, /*distinct=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateDiffTest, ::testing::Values(11u, 37u, 101u));

}  // namespace
}  // namespace aplus
