// Asserts the hot-path operators perform zero heap allocations in
// steady state: after one warm-up Run() (which grows the plan-lifetime
// scratch buffers to their high-water mark), further Run() calls must
// not touch the global allocator. Global operator new/delete are
// replaced with counting wrappers; counts are compared across the
// second pass.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "datagen/label_assigner.h"
#include "datagen/power_law_generator.h"
#include "index/index_store.h"
#include "query/operators.h"
#include "util/rng.h"

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* AlignedCountingAlloc(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  std::size_t a = static_cast<std::size_t>(align);
  void* p = std::aligned_alloc(a, (size + a - 1) / a * a);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align) {
  return AlignedCountingAlloc(size, align);
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return AlignedCountingAlloc(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace aplus {
namespace {

class ZeroAllocTest : public ::testing::Test {
 protected:
  ZeroAllocTest() {
    PowerLawParams params;
    params.num_vertices = 1500;
    params.avg_degree = 10.0;
    params.seed = 5;
    GeneratePowerLawGraph(params, &graph_);
    elabel_ = graph_.catalog().FindEdgeLabel("E");
    weight_key_ = graph_.AddEdgeProperty("w", ValueType::kInt64);
    PropertyColumn* col = graph_.edge_props().mutable_column(weight_key_);
    Rng rng(9);
    for (edge_id_t e = 0; e < graph_.num_edges(); ++e) {
      col->SetInt64(e, static_cast<int64_t>(rng.NextBounded(16)));
    }
    store_ = std::make_unique<IndexStore>(&graph_);
    store_->BuildPrimary(IndexConfig::Default());
    OneHopViewDef all;
    all.name = "all";
    vp_ = store_->CreateVpIndex(all, IndexConfig::Default(), Direction::kFwd);
    IndexConfig weight_config = IndexConfig::Default();
    weight_config.sorts.clear();
    weight_config.sorts.push_back({SortSource::kEdgeProp, weight_key_});
    OneHopViewDef all_w;
    all_w.name = "all_w";
    vp_w_ = store_->CreateVpIndex(all_w, weight_config, Direction::kFwd);
    primary_w_ = std::make_unique<PrimaryIndex>(&graph_, Direction::kFwd);
    primary_w_->Build(weight_config);
  }

  ListDescriptor List(int bound_var, int target_v, int target_e, bool offset) {
    ListDescriptor desc;
    if (offset) {
      desc.source = ListDescriptor::Source::kVp;
      desc.vp = vp_;
    } else {
      desc.source = ListDescriptor::Source::kPrimary;
      desc.primary = store_->primary(Direction::kFwd);
    }
    desc.bound_var = bound_var;
    desc.cats = {elabel_};
    desc.target_vertex_var = target_v;
    desc.target_edge_var = target_e;
    desc.nbr_sorted = true;
    return desc;
  }

  // Drives `op` over a spread of source tuples; returns allocations
  // performed by the pass.
  uint64_t DrivePass(Operator* op, MatchState* state, size_t z) {
    uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    uint64_t nv = graph_.num_vertices();
    for (uint64_t t = 0; t < 50; ++t) {
      for (size_t l = 0; l < z; ++l) {
        state->v[l] = static_cast<vertex_id_t>((t * 131 + l * 37) % nv);
      }
      op->Run(state);
    }
    return g_alloc_count.load(std::memory_order_relaxed) - before;
  }

  Graph graph_;
  label_t elabel_ = kInvalidLabel;
  prop_key_t weight_key_ = kInvalidPropKey;
  std::unique_ptr<IndexStore> store_;
  VpIndex* vp_ = nullptr;
  VpIndex* vp_w_ = nullptr;
  std::unique_ptr<PrimaryIndex> primary_w_;
};

TEST_F(ZeroAllocTest, ExtendIntersectSteadyStateDoesNotAllocate) {
  for (size_t z : {2, 3, 4}) {
    for (bool offset : {false, true}) {
      std::vector<ListDescriptor> lists;
      for (size_t l = 0; l < z; ++l) {
        lists.push_back(List(static_cast<int>(l), static_cast<int>(z), static_cast<int>(l),
                             offset));
      }
      ExtendIntersectOp op(&graph_, lists, static_cast<int>(z), {});
      SinkOp sink;
      op.set_next(&sink);
      MatchState state;
      state.Reset(static_cast<int>(z) + 1, static_cast<int>(z));
      DrivePass(&op, &state, z);  // warm-up: scratch reaches its high-water mark
      EXPECT_EQ(DrivePass(&op, &state, z), 0u) << "z=" << z << " offset=" << offset;
      EXPECT_GT(state.count, 0u);
    }
  }
}

TEST_F(ZeroAllocTest, MultiExtendSteadyStateDoesNotAllocate) {
  for (size_t z : {2, 3}) {
    for (bool offset : {false, true}) {
      std::vector<ListDescriptor> lists;
      for (size_t l = 0; l < z; ++l) {
        ListDescriptor desc;
        if (offset) {
          desc.source = ListDescriptor::Source::kVp;
          desc.vp = vp_w_;  // offset arm exercises the run-decode buffers
        } else {
          desc.source = ListDescriptor::Source::kPrimary;
          desc.primary = primary_w_.get();
        }
        desc.bound_var = static_cast<int>(l);
        desc.cats = {elabel_};
        desc.target_vertex_var = static_cast<int>(z + l);
        desc.target_edge_var = static_cast<int>(l);
        lists.push_back(desc);
      }
      MultiExtendOp op(&graph_, lists, {});
      SinkOp sink;
      op.set_next(&sink);
      MatchState state;
      state.Reset(static_cast<int>(2 * z), static_cast<int>(z));
      DrivePass(&op, &state, z);
      EXPECT_EQ(DrivePass(&op, &state, z), 0u) << "z=" << z << " offset=" << offset;
      EXPECT_GT(state.count, 0u);
    }
  }
}

}  // namespace
}  // namespace aplus
