// Asserts the hot-path operators perform zero heap allocations in
// steady state: after one warm-up Run() (which grows the plan-lifetime
// scratch buffers to their high-water mark), further Run() calls must
// not touch the global allocator. Global operator new/delete are
// replaced with counting wrappers; counts are compared across the
// second pass.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/database.h"
#include "datagen/label_assigner.h"
#include "datagen/power_law_generator.h"
#include "index/index_store.h"
#include "query/operators.h"
#include "query/plan.h"
#include "util/rng.h"

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

// The counting allocator below intentionally backs global operator new
// with std::malloc and operator delete with std::free; the heuristic
// behind -Wmismatched-new-delete cannot see that the replaced pair is
// consistent and flags inlined new/delete sites across the whole TU.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* AlignedCountingAlloc(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  std::size_t a = static_cast<std::size_t>(align);
  void* p = std::aligned_alloc(a, (size + a - 1) / a * a);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align) {
  return AlignedCountingAlloc(size, align);
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return AlignedCountingAlloc(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace aplus {
namespace {

class ZeroAllocTest : public ::testing::Test {
 protected:
  ZeroAllocTest() {
    PowerLawParams params;
    params.num_vertices = 1500;
    params.avg_degree = 10.0;
    params.seed = 5;
    GeneratePowerLawGraph(params, &graph_);
    elabel_ = graph_.catalog().FindEdgeLabel("E");
    weight_key_ = graph_.AddEdgeProperty("w", ValueType::kInt64);
    PropertyColumn* col = graph_.edge_props().mutable_column(weight_key_);
    Rng rng(9);
    for (edge_id_t e = 0; e < graph_.num_edges(); ++e) {
      col->SetInt64(e, static_cast<int64_t>(rng.NextBounded(16)));
    }
    vgrp_key_ = graph_.AddVertexProperty("grp", ValueType::kInt64);
    PropertyColumn* vcol = graph_.vertex_props().mutable_column(vgrp_key_);
    for (vertex_id_t v = 0; v < graph_.num_vertices(); ++v) {
      vcol->SetInt64(v, static_cast<int64_t>(rng.NextBounded(8)));
    }
    store_ = std::make_unique<IndexStore>(&graph_);
    store_->BuildPrimary(IndexConfig::Default());
    OneHopViewDef all;
    all.name = "all";
    vp_ = store_->CreateVpIndex(all, IndexConfig::Default(), Direction::kFwd);
    IndexConfig weight_config = IndexConfig::Default();
    weight_config.sorts.clear();
    weight_config.sorts.push_back({SortSource::kEdgeProp, weight_key_});
    OneHopViewDef all_w;
    all_w.name = "all_w";
    vp_w_ = store_->CreateVpIndex(all_w, weight_config, Direction::kFwd);
    primary_w_ = std::make_unique<PrimaryIndex>(&graph_, Direction::kFwd);
    primary_w_->Build(weight_config);
  }

  ListDescriptor List(int bound_var, int target_v, int target_e, bool offset) {
    ListDescriptor desc;
    if (offset) {
      desc.source = ListDescriptor::Source::kVp;
      desc.vp = vp_;
    } else {
      desc.source = ListDescriptor::Source::kPrimary;
      desc.primary = store_->primary(Direction::kFwd);
    }
    desc.bound_var = bound_var;
    desc.cats = {elabel_};
    desc.target_vertex_var = target_v;
    desc.target_edge_var = target_e;
    desc.nbr_sorted = true;
    return desc;
  }

  // Drives `op` over a spread of source tuples; returns allocations
  // performed by the pass.
  uint64_t DrivePass(Operator* op, MatchState* state, size_t z) {
    uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    uint64_t nv = graph_.num_vertices();
    for (uint64_t t = 0; t < 50; ++t) {
      for (size_t l = 0; l < z; ++l) {
        state->v[l] = static_cast<vertex_id_t>((t * 131 + l * 37) % nv);
      }
      op->Run(state);
    }
    return g_alloc_count.load(std::memory_order_relaxed) - before;
  }

  Graph graph_;
  label_t elabel_ = kInvalidLabel;
  prop_key_t weight_key_ = kInvalidPropKey;
  prop_key_t vgrp_key_ = kInvalidPropKey;
  std::unique_ptr<IndexStore> store_;
  VpIndex* vp_ = nullptr;
  VpIndex* vp_w_ = nullptr;
  std::unique_ptr<PrimaryIndex> primary_w_;
};

TEST_F(ZeroAllocTest, ExtendIntersectSteadyStateDoesNotAllocate) {
  for (size_t z : {2, 3, 4}) {
    for (bool offset : {false, true}) {
      std::vector<ListDescriptor> lists;
      for (size_t l = 0; l < z; ++l) {
        lists.push_back(List(static_cast<int>(l), static_cast<int>(z), static_cast<int>(l),
                             offset));
      }
      ExtendIntersectOp op(&graph_, lists, static_cast<int>(z), {});
      SinkOp sink;
      op.set_next(&sink);
      MatchState state;
      state.Reset(static_cast<int>(z) + 1, static_cast<int>(z));
      DrivePass(&op, &state, z);  // warm-up: scratch reaches its high-water mark
      EXPECT_EQ(DrivePass(&op, &state, z), 0u) << "z=" << z << " offset=" << offset;
      EXPECT_GT(state.count, 0u);
    }
  }
}

TEST_F(ZeroAllocTest, ScanPredicateSteadyStateDoesNotAllocate) {
  // ScanOp predicate evaluation (ID pseudo-property + int64 property)
  // must not touch the allocator: Values are stack tagged scalars.
  QueryComparison id_pred;
  id_pred.lhs = QueryPropRef{0, false, kInvalidPropKey, /*is_id=*/true};
  id_pred.op = CmpOp::kLt;
  id_pred.rhs_const = Value::Int64(static_cast<int64_t>(graph_.num_vertices() / 2));
  QueryComparison grp_pred;
  grp_pred.lhs = QueryPropRef{0, false, vgrp_key_, false};
  grp_pred.op = CmpOp::kLe;
  grp_pred.rhs_const = Value::Int64(5);
  ScanOp op(&graph_, 0, kInvalidLabel, kInvalidVertex, {id_pred, grp_pred});
  SinkOp sink;
  op.set_next(&sink);
  MatchState state;
  state.Reset(1, 0);
  op.Run(&state);  // warm-up
  uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  op.Run(&state);
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed) - before, 0u);
  EXPECT_GT(state.count, 0u);
  EXPECT_LT(state.count, 2 * static_cast<uint64_t>(graph_.num_vertices()));
}

TEST_F(ZeroAllocTest, EpRuntimeExtendSteadyStateDoesNotAllocate) {
  // The EP runtime fallback (unmaterialized bound edges re-derive the
  // view adjacency from the anchor's primary list) must stay
  // allocation-free: predicate evaluation over int properties only.
  TwoHopViewDef view;
  view.name = "w_flow";
  view.kind = EpKind::kDstFwd;
  view.pred.AddRef(PropRef{PropSite::kAdjEdge, weight_key_, false, false}, CmpOp::kGt,
                   PropRef{PropSite::kBoundEdge, weight_key_, false, false});
  EpIndex* full = store_->CreateEpIndex(view, IndexConfig::Default());
  ASSERT_TRUE(full->fully_materialized());
  EpIndex* partial =
      store_->CreateEpIndex(view, IndexConfig::Default(), nullptr, full->MemoryBytes() / 8);
  ASSERT_FALSE(partial->fully_materialized());

  // Unmaterialized bound edges whose runtime adjacency is non-empty.
  std::vector<edge_id_t> bound_edges;
  for (edge_id_t e = graph_.num_edges(); e-- > 0 && bound_edges.size() < 50;) {
    if (partial->IsMaterialized(e)) continue;
    if (store_->primary(Direction::kFwd)->GetFullList(partial->AnchorOf(e)).len > 1) {
      bound_edges.push_back(e);
    }
  }
  ASSERT_FALSE(bound_edges.empty());

  ListDescriptor desc;
  desc.source = ListDescriptor::Source::kEp;
  desc.ep = partial;
  desc.bound_var = 0;  // edge var
  desc.cats = {elabel_};
  desc.target_vertex_var = 1;
  desc.target_edge_var = 1;
  ExtendOp op(&graph_, desc, {});
  SinkOp sink;
  op.set_next(&sink);
  MatchState state;
  state.Reset(2, 2);
  auto drive = [&] {
    uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    for (edge_id_t eb : bound_edges) {
      state.e[0] = eb;
      op.Run(&state);
    }
    return g_alloc_count.load(std::memory_order_relaxed) - before;
  };
  drive();  // warm-up
  EXPECT_EQ(drive(), 0u);
  EXPECT_GT(state.count, 0u);
}

TEST_F(ZeroAllocTest, PlanExecuteSteadyStateDoesNotAllocate) {
  // Full triangle plan (scan with predicate -> extend -> E/I -> sink),
  // executed repeatedly: serial and parallel steady state must both be
  // allocation-free (MatchStates, worker replicas, and the thread pool
  // persist across Execute calls).
  QueryGraph query;
  int a = query.AddVertex("a");
  int b = query.AddVertex("b");
  int c = query.AddVertex("c");
  query.AddEdge(a, b, elabel_, "e0");
  query.AddEdge(a, c, elabel_, "e1");
  query.AddEdge(b, c, elabel_, "e2");
  QueryComparison scan_pred;
  scan_pred.lhs = QueryPropRef{a, false, vgrp_key_, false};
  scan_pred.op = CmpOp::kLe;
  scan_pred.rhs_const = Value::Int64(6);
  PlanBuilder builder(&graph_, &query);
  auto plan = builder.Scan(a, {scan_pred})
                  .Extend(List(a, b, 0, /*offset=*/false))
                  .ExtendIntersect({List(a, c, 1, false), List(b, c, 2, true)}, c)
                  .Build();

  auto measure = [&](int threads) {
    uint64_t count = plan->Execute(threads);  // warm-up: scratch + replicas + pool threads
    count = plan->Execute(threads);           // second warm-up pass reaches the high-water mark
    uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(plan->Execute(threads), count) << "threads=" << threads;
    }
    uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) - before;
    EXPECT_GT(count, 0u);
    return allocs;
  };
  EXPECT_EQ(measure(1), 0u) << "serial Execute steady state allocated";
  EXPECT_EQ(measure(4), 0u) << "parallel Execute steady state allocated";
  EXPECT_EQ(plan->Execute(4), plan->Execute(1)) << "parallel/serial count mismatch";
}

TEST_F(ZeroAllocTest, PreparedServingPathSteadyStateDoesNotAllocate) {
  // The serving hot path — Bind (slot patch) + Execute (projection sink
  // streaming typed row batches to a consumer) — must be allocation-free
  // in steady state at 1 and 4 threads. Warm-up covers scratch growth,
  // worker-replica creation, and the post-parallel slot re-collection.
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 800;
  params.avg_degree = 6.0;
  params.seed = 29;
  GeneratePowerLawGraph(params, &graph);
  prop_key_t amt = graph.AddEdgeProperty("amt", ValueType::kInt64);
  PropertyColumn* col = graph.edge_props().mutable_column(amt);
  Rng rng(31);
  for (edge_id_t e = 0; e < graph.num_edges(); ++e) {
    col->SetInt64(e, static_cast<int64_t>(rng.NextBounded(100)));
  }
  Database db(std::move(graph));
  db.BuildPrimaryIndexes();
  std::unique_ptr<PreparedQuery> prepared = db.Prepare(
      "MATCH (a)-[r1:E]->(b)-[r2:E]->(c) WHERE a.ID = $src RETURN b, c, r2.amt");
  ASSERT_TRUE(prepared->ok()) << prepared->error();

  struct CountingConsumer : RowConsumer {
    std::atomic<uint64_t> rows{0};
    void OnBatch(const RowBatch& batch) override {
      rows.fetch_add(batch.num_rows(), std::memory_order_relaxed);
    }
  };
  CountingConsumer consumer;
  const vertex_id_t sources[] = {1, 17, 63, 255};
  auto round = [&] {
    uint64_t total = 0;
    for (vertex_id_t src : sources) {
      ASSERT_TRUE(prepared->Bind("src", Value::Int64(src))) << prepared->bind_error();
      QueryOutcome s = prepared->Execute(&consumer, 1);
      QueryOutcome p = prepared->Execute(&consumer, 4);
      ASSERT_TRUE(s.ok()) << s.error;
      ASSERT_TRUE(p.ok()) << p.error;
      EXPECT_EQ(s.rows, p.rows) << "src=" << src;
      total += s.rows;
    }
    EXPECT_GT(total, 0u);
  };
  // Two warm-up rounds: the first grows scratch + replicas + pool
  // threads, the second triggers the one-time slot re-collection after
  // the pipeline count grew and reaches the high-water mark.
  round();
  round();
  uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  round();
  round();
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed) - before, 0u)
      << "prepared Bind+Execute steady state allocated";
}

TEST_F(ZeroAllocTest, PreparedAggregateSortSteadyStateDoesNotAllocate) {
  // The staged sink pipeline (grouped aggregation -> top-k sort ->
  // limit) must be allocation-free in steady state too: group arenas,
  // the open-addressing slot table, sort buffers, and the output batches
  // all reach a high-water mark during warm-up and are reused across
  // Bind+Execute rounds, serial and 4-way parallel (which adds the
  // worker chains and the partial-merge path).
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 800;
  params.avg_degree = 6.0;
  params.seed = 29;
  GeneratePowerLawGraph(params, &graph);
  prop_key_t amt = graph.AddEdgeProperty("amt", ValueType::kInt64);
  PropertyColumn* col = graph.edge_props().mutable_column(amt);
  Rng rng(31);
  for (edge_id_t e = 0; e < graph.num_edges(); ++e) {
    col->SetInt64(e, static_cast<int64_t>(rng.NextBounded(100)));
  }
  Database db(std::move(graph));
  db.BuildPrimaryIndexes();
  std::unique_ptr<PreparedQuery> prepared = db.Prepare(
      "MATCH (a)-[r1:E]->(b)-[r2:E]->(c) WHERE a.ID = $src "
      "RETURN b, COUNT(*), SUM(r2.amt), AVG(r2.amt) ORDER BY COUNT(*) DESC, b LIMIT 5");
  ASSERT_TRUE(prepared->ok()) << prepared->error();

  struct CountingConsumer : RowConsumer {
    uint64_t rows = 0;
    void OnBatch(const RowBatch& batch) override { rows += batch.num_rows(); }
  };
  CountingConsumer consumer;
  const vertex_id_t sources[] = {1, 17, 63, 255};
  auto round = [&](bool parallel) {
    uint64_t total = 0;
    for (vertex_id_t src : sources) {
      ASSERT_TRUE(prepared->Bind("src", Value::Int64(src))) << prepared->bind_error();
      QueryOutcome s = prepared->Execute(&consumer, 1);
      ASSERT_TRUE(s.ok()) << s.error;
      if (parallel) {
        QueryOutcome p = prepared->Execute(&consumer, 4);
        ASSERT_TRUE(p.ok()) << p.error;
        EXPECT_EQ(s.rows, p.rows) << "src=" << src;
        EXPECT_EQ(s.count, p.count) << "src=" << src;
      }
      total += s.rows;
    }
    EXPECT_GT(total, 0u);
  };
  // Warm-up covers replicas, slot re-collection, and arena growth; the
  // measured rounds stay serial + the merge of the (reset) worker
  // chains. Parallel execution is excluded from the alloc assertion on
  // purpose: which worker claims the pinned scan's single morsel is
  // scheduling-dependent, so per-worker arena high-water marks are not
  // deterministic (parallel exactness is covered by
  // aggregate_diff_test).
  round(/*parallel=*/true);
  round(/*parallel=*/true);
  uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  round(/*parallel=*/false);
  round(/*parallel=*/false);
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed) - before, 0u)
      << "staged aggregate/sort Bind+Execute steady state allocated";
}

TEST_F(ZeroAllocTest, CountStarPushdownSteadyStateDoesNotAllocate) {
  // A bare RETURN COUNT(*) runs the counting sink with no row
  // materialization at all ("ProjectSink (count)" in the plan, no
  // aggregate stage): steady-state Bind+Execute must be allocation-free,
  // including the synthesized single-row result batch (Init'd once at
  // prepare, Clear/Append reuse its capacity).
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 800;
  params.avg_degree = 6.0;
  params.seed = 29;
  GeneratePowerLawGraph(params, &graph);
  Database db(std::move(graph));
  db.BuildPrimaryIndexes();
  std::unique_ptr<PreparedQuery> prepared = db.Prepare(
      "MATCH (a)-[r1:E]->(b)-[r2:E]->(c) WHERE a.ID = $src RETURN COUNT(*)");
  ASSERT_TRUE(prepared->ok()) << prepared->error();
  ASSERT_TRUE(prepared->count_star_only());
  EXPECT_NE(prepared->plan_text().find("ProjectSink (count)"), std::string::npos)
      << prepared->plan_text();
  EXPECT_EQ(prepared->plan_text().find("GROUP AGGREGATE"), std::string::npos)
      << prepared->plan_text();

  struct CountingConsumer : RowConsumer {
    uint64_t rows = 0;
    int64_t last = -1;
    void OnBatch(const RowBatch& batch) override {
      rows += batch.num_rows();
      if (batch.num_rows() > 0) last = batch.Cell(0, batch.num_rows() - 1).AsInt64();
    }
  };
  CountingConsumer consumer;
  const vertex_id_t sources[] = {1, 17, 63, 255};
  auto round = [&] {
    for (vertex_id_t src : sources) {
      ASSERT_TRUE(prepared->Bind("src", Value::Int64(src))) << prepared->bind_error();
      QueryOutcome out = prepared->Execute(&consumer, 1);
      ASSERT_TRUE(out.ok()) << out.error;
      EXPECT_EQ(out.rows, 1u) << "src=" << src;
      EXPECT_EQ(consumer.last, static_cast<int64_t>(out.count)) << "src=" << src;
    }
  };
  round();
  round();
  uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  round();
  round();
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed) - before, 0u)
      << "COUNT(*) pushdown Bind+Execute steady state allocated";
  EXPECT_GT(consumer.rows, 0u);
}

TEST_F(ZeroAllocTest, MultiExtendSteadyStateDoesNotAllocate) {
  for (size_t z : {2, 3}) {
    for (bool offset : {false, true}) {
      std::vector<ListDescriptor> lists;
      for (size_t l = 0; l < z; ++l) {
        ListDescriptor desc;
        if (offset) {
          desc.source = ListDescriptor::Source::kVp;
          desc.vp = vp_w_;  // offset arm exercises the run-decode buffers
        } else {
          desc.source = ListDescriptor::Source::kPrimary;
          desc.primary = primary_w_.get();
        }
        desc.bound_var = static_cast<int>(l);
        desc.cats = {elabel_};
        desc.target_vertex_var = static_cast<int>(z + l);
        desc.target_edge_var = static_cast<int>(l);
        lists.push_back(desc);
      }
      MultiExtendOp op(&graph_, lists, {});
      SinkOp sink;
      op.set_next(&sink);
      MatchState state;
      state.Reset(static_cast<int>(2 * z), static_cast<int>(z));
      DrivePass(&op, &state, z);
      EXPECT_EQ(DrivePass(&op, &state, z), 0u) << "z=" << z << " offset=" << offset;
      EXPECT_GT(state.count, 0u);
    }
  }
}

}  // namespace
}  // namespace aplus
