// Tests for the epoch-based reclamation layer behind concurrent
// serving: pinned readers must block reclamation of anything retired at
// or after their pin epoch, unpinned garbage must drain, and the
// pointer-swap protocol used by the index layer (publish new run, retire
// old, advance) must never free memory a concurrent reader still holds.
// The multithreaded cases are the TSan targets of the concurrency-stress
// CI lane.

#include "util/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace aplus {
namespace {

// Counts live instances so tests can observe deleter execution.
struct Tracked {
  explicit Tracked(std::atomic<int>* live) : live_count(live) { live_count->fetch_add(1); }
  ~Tracked() { live_count->fetch_sub(1); }
  std::atomic<int>* live_count;
  uint64_t payload = 0xA110CA7EDull;  // readers assert this after the swap
};

TEST(EpochTest, RetireWithoutReadersDrainsAfterAdvance) {
  EpochManager mgr;
  std::atomic<int> live{0};
  mgr.Retire(new Tracked(&live));
  EXPECT_EQ(live.load(), 1);
  EXPECT_EQ(mgr.garbage_size(), 1u);
  // Retired at the current epoch: not reclaimable until the epoch moves.
  mgr.TryReclaim();
  EXPECT_EQ(live.load(), 1);
  mgr.Advance();
  EXPECT_EQ(mgr.TryReclaim(), 1u);
  EXPECT_EQ(live.load(), 0);
  EXPECT_EQ(mgr.garbage_size(), 0u);
}

TEST(EpochTest, PinnedReaderBlocksReclaim) {
  EpochManager mgr;
  std::atomic<int> live{0};
  mgr.Pin();
  mgr.Retire(new Tracked(&live));
  mgr.Advance();
  // The pinned slot holds MinActiveEpoch at the pin epoch, which is not
  // strictly above the retire epoch.
  EXPECT_EQ(mgr.TryReclaim(), 0u);
  EXPECT_EQ(live.load(), 1);
  mgr.Unpin();
  EXPECT_EQ(mgr.TryReclaim(), 1u);
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochTest, NestedPinsOnlyOutermostReleases) {
  EpochManager mgr;
  std::atomic<int> live{0};
  uint64_t outer = mgr.Pin();
  uint64_t inner = mgr.Pin();  // nested: same epoch, no re-publish
  EXPECT_EQ(outer, inner);
  EXPECT_EQ(mgr.num_pinned(), 1);
  mgr.Retire(new Tracked(&live));
  mgr.Advance();
  mgr.Unpin();  // still pinned by the outer guard
  EXPECT_EQ(mgr.num_pinned(), 1);
  EXPECT_EQ(mgr.TryReclaim(), 0u);
  mgr.Unpin();
  EXPECT_EQ(mgr.num_pinned(), 0);
  EXPECT_EQ(mgr.TryReclaim(), 1u);
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochTest, MinActiveEpochTracksOldestPinnedThread) {
  EpochManager mgr;
  uint64_t e0 = mgr.Pin();  // this thread pins first
  mgr.Advance();
  std::thread later([&] {
    mgr.Pin();  // pins at a newer epoch
    mgr.Unpin();
  });
  later.join();
  EXPECT_EQ(mgr.MinActiveEpoch(), e0);
  mgr.Unpin();
  EXPECT_EQ(mgr.MinActiveEpoch(), mgr.current_epoch());
}

TEST(EpochTest, DrainAndReclaimAllEmptiesQueue) {
  EpochManager mgr;
  std::atomic<int> live{0};
  for (int i = 0; i < 100; ++i) {
    mgr.Retire(new Tracked(&live));
    if (i % 3 == 0) mgr.Advance();
  }
  EXPECT_EQ(live.load(), 100);
  mgr.DrainAndReclaimAll();
  EXPECT_EQ(live.load(), 0);
  EXPECT_EQ(mgr.garbage_size(), 0u);
}

TEST(EpochTest, GuardPinsForScope) {
  EpochManager mgr;
  std::atomic<int> live{0};
  {
    EpochGuard guard(mgr);
    mgr.Retire(new Tracked(&live));
    mgr.Advance();
    mgr.TryReclaim();
    EXPECT_EQ(live.load(), 1);
  }
  mgr.Advance();
  mgr.TryReclaim();
  EXPECT_EQ(live.load(), 0);
}

// The index layer's publication protocol in miniature: a writer swaps an
// atomic pointer to a fresh object and retires the old one; readers pin,
// dereference, and validate the payload. Under TSan (the CI lane's
// build) any premature free or unsynchronized publication is a hard
// failure; under plain builds the payload check still catches
// use-after-free garbage most of the time.
TEST(EpochTest, ConcurrentSwapHammer) {
  EpochManager mgr;
  std::atomic<int> live{0};
  std::atomic<Tracked*> current{new Tracked(&live)};
  std::atomic<bool> stop{false};
  constexpr int kReaders = 4;
  constexpr int kSwaps = 2000;

  std::atomic<int> started{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      bool counted = false;
      while (!stop.load(std::memory_order_acquire)) {
        EpochGuard guard(mgr);
        Tracked* obj = current.load(std::memory_order_acquire);
        // `obj` cannot be freed while this thread is pinned.
        ASSERT_EQ(obj->payload, 0xA110CA7EDull);
        if (!counted) {
          started.fetch_add(1, std::memory_order_release);
          counted = true;
        }
      }
    });
  }
  // Don't start swapping until every reader is actively dereferencing,
  // so the swaps genuinely race the reads.
  while (started.load(std::memory_order_acquire) < kReaders) std::this_thread::yield();

  for (int i = 0; i < kSwaps; ++i) {
    Tracked* fresh = new Tracked(&live);
    Tracked* old = current.exchange(fresh, std::memory_order_acq_rel);
    mgr.Retire(old);
    mgr.Advance();
    if (i % 16 == 0) mgr.TryReclaim();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  mgr.DrainAndReclaimAll();
  EXPECT_EQ(live.load(), 1);  // only the last published object survives
  delete current.load();
  EXPECT_EQ(live.load(), 0);
}

// Slots are claimed per thread and released at thread exit, so a stream
// of short-lived threads must not exhaust the slot table.
TEST(EpochTest, ThreadSlotsAreRecycled) {
  EpochManager mgr;
  for (int round = 0; round < EpochManager::kMaxSlots + 16; ++round) {
    std::thread t([&] {
      EpochGuard guard(mgr);
      EXPECT_GE(mgr.num_pinned(), 1);
    });
    t.join();
  }
  EXPECT_EQ(mgr.num_pinned(), 0);
}

}  // namespace
}  // namespace aplus
