#include <gtest/gtest.h>

#include <set>

#include "datagen/example_graph.h"
#include "datagen/financial_props.h"
#include "datagen/power_law_generator.h"
#include "index/vp_index.h"

namespace aplus {
namespace {

std::set<edge_id_t> SliceEdges(const AdjListSlice& slice) {
  std::set<edge_id_t> edges;
  for (uint32_t i = 0; i < slice.size(); ++i) edges.insert(slice.EdgeAt(i));
  return edges;
}

class VpIndexTest : public ::testing::Test {
 protected:
  VpIndexTest() : ex_(BuildExampleGraph()), fwd_(&ex_.graph, Direction::kFwd) {
    fwd_.Build(IndexConfig::Default());
  }

  ExampleGraph ex_;
  PrimaryIndex fwd_;
};

TEST_F(VpIndexTest, SharedLevelsModeDetection) {
  // No predicate + same partitioning as primary -> shared levels.
  OneHopViewDef view;
  view.name = "resorted";
  IndexConfig config = IndexConfig::Default();
  config.sorts.clear();
  config.sorts.push_back({SortSource::kEdgeProp, ex_.date_key});
  VpIndex vp(&ex_.graph, &fwd_, view, config);
  EXPECT_TRUE(vp.shares_partition_levels());

  OneHopViewDef filtered;
  filtered.name = "filtered";
  filtered.pred.AddConst(PropRef{PropSite::kAdjEdge, ex_.amount_key, false, false}, CmpOp::kGt,
                         Value::Int64(50));
  VpIndex vp2(&ex_.graph, &fwd_, filtered, config);
  EXPECT_FALSE(vp2.shares_partition_levels());
}

TEST_F(VpIndexTest, SharedLevelsReSortsWithinPrimarySublists) {
  // Same partitioning, sort on edge date instead of neighbour ID (the
  // D+VPt configuration of Table III).
  OneHopViewDef view;
  view.name = "VPt";
  IndexConfig config = IndexConfig::Default();
  config.sorts.clear();
  config.sorts.push_back({SortSource::kEdgeProp, ex_.date_key});
  VpIndex vp(&ex_.graph, &fwd_, view, config);
  vp.Build();
  EXPECT_EQ(vp.num_edges_indexed(), ex_.graph.num_edges());
  const PropertyColumn* date = ex_.graph.edge_props().column(ex_.date_key);
  for (vertex_id_t v = 0; v < ex_.graph.num_vertices(); ++v) {
    for (label_t label = 0; label < ex_.graph.catalog().num_edge_labels(); ++label) {
      AdjListSlice primary = fwd_.GetList(v, {label});
      AdjListSlice sorted = vp.GetList(v, {label});
      ASSERT_EQ(primary.size(), sorted.size());
      EXPECT_EQ(SliceEdges(primary), SliceEdges(sorted));
      for (uint32_t i = 1; i < sorted.size(); ++i) {
        int64_t a = date->IsNull(sorted.EdgeAt(i - 1)) ? INT64_MAX
                                                       : date->GetInt64(sorted.EdgeAt(i - 1));
        int64_t b =
            date->IsNull(sorted.EdgeAt(i)) ? INT64_MAX : date->GetInt64(sorted.EdgeAt(i));
        EXPECT_LE(a, b);
      }
    }
  }
}

TEST_F(VpIndexTest, PredicateFiltersEdges) {
  // Example 6 analogue: amount > 50 (USD omitted for coverage).
  OneHopViewDef view;
  view.name = "LargeTrnx";
  view.pred.AddConst(PropRef{PropSite::kAdjEdge, ex_.amount_key, false, false}, CmpOp::kGt,
                     Value::Int64(50));
  VpIndex vp(&ex_.graph, &fwd_, view, IndexConfig::Default());
  vp.Build();
  const PropertyColumn* amount = ex_.graph.edge_props().column(ex_.amount_key);
  uint64_t expected = 0;
  for (edge_id_t e = 0; e < ex_.graph.num_edges(); ++e) {
    if (!amount->IsNull(e) && amount->GetInt64(e) > 50) ++expected;
  }
  EXPECT_EQ(vp.num_edges_indexed(), expected);
  // Per-vertex lists match a reference filter of the primary lists.
  for (vertex_id_t v = 0; v < ex_.graph.num_vertices(); ++v) {
    std::set<edge_id_t> expected_list;
    AdjListSlice primary = fwd_.GetFullList(v);
    for (uint32_t i = 0; i < primary.size(); ++i) {
      edge_id_t e = primary.EdgeAt(i);
      if (!amount->IsNull(e) && amount->GetInt64(e) > 50) expected_list.insert(e);
    }
    EXPECT_EQ(SliceEdges(vp.GetFullList(v)), expected_list) << "v=" << v;
  }
}

TEST_F(VpIndexTest, OffsetsResolveToPrimaryEntries) {
  OneHopViewDef view;
  view.name = "wires";
  PropRef label_ref;
  label_ref.site = PropSite::kAdjEdge;
  label_ref.is_label = true;
  view.pred.AddConst(label_ref, CmpOp::kEq, Value::Int64(ex_.wire_label));
  VpIndex vp(&ex_.graph, &fwd_, view, IndexConfig::Flat());
  vp.Build();
  AdjListSlice slice = vp.GetFullList(ex_.accounts[0]);
  EXPECT_TRUE(slice.is_offset_list());
  for (uint32_t i = 0; i < slice.size(); ++i) {
    EXPECT_EQ(ex_.graph.edge_label(slice.EdgeAt(i)), ex_.wire_label);
    EXPECT_EQ(ex_.graph.edge_src(slice.EdgeAt(i)), ex_.accounts[0]);
  }
  EXPECT_EQ(slice.size(), 3u);  // t4, t17, t20
}

TEST_F(VpIndexTest, DifferentPartitioningBuildsOwnLevels) {
  // Partition the view by currency while the primary partitions by label.
  OneHopViewDef view;
  view.name = "bycur";
  view.pred.AddConst(PropRef{PropSite::kAdjEdge, ex_.amount_key, false, false}, CmpOp::kGe,
                     Value::Int64(0));
  IndexConfig config;
  config.partitions.push_back({PartitionSource::kEdgeProp, ex_.currency_key});
  config.sorts.push_back({SortSource::kNbrId, kInvalidPropKey});
  VpIndex vp(&ex_.graph, &fwd_, view, config);
  EXPECT_FALSE(vp.shares_partition_levels());
  vp.Build();
  // v1's EUR slice: t4, t17, t18.
  std::set<edge_id_t> eur{ex_.transfers[3], ex_.transfers[16], ex_.transfers[17]};
  EXPECT_EQ(SliceEdges(vp.GetList(ex_.accounts[0], {kCurrencyEur})), eur);
}

TEST_F(VpIndexTest, MemoryIsSmallRelativeToPrimary) {
  // Offset lists should cost far less than the 12-byte ID entries
  // (Section III-B3) on a graph big enough to amortize page headers.
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 20000;
  params.avg_degree = 12.0;
  GeneratePowerLawGraph(params, &graph);
  PrimaryIndex primary(&graph, Direction::kFwd);
  primary.Build(IndexConfig::Default());

  OneHopViewDef view;
  view.name = "all";
  VpIndex vp(&graph, &primary, view, IndexConfig::Default());
  vp.Build();
  EXPECT_EQ(vp.num_edges_indexed(), graph.num_edges());
  // Shared levels + 1..2-byte offsets vs 12-byte ID entries.
  EXPECT_LT(static_cast<double>(vp.MemoryBytes()),
            0.35 * static_cast<double>(primary.MemoryBytes()));
}

TEST_F(VpIndexTest, BwdDirectionIndexesInEdges) {
  PrimaryIndex bwd(&ex_.graph, Direction::kBwd);
  bwd.Build(IndexConfig::Default());
  OneHopViewDef view;
  view.name = "all_bwd";
  VpIndex vp(&ex_.graph, &bwd, view, IndexConfig::Default());
  vp.Build();
  // v2's incoming transfers + owns edge.
  EXPECT_EQ(vp.GetFullList(ex_.accounts[1]).size(), 5u);
}

}  // namespace
}  // namespace aplus
