// Tests for the two forms of predicate subsumption the optimizer checks
// (Section IV-A): conjunctive matching and range subsumption.

#include <gtest/gtest.h>

#include "view/subsumption.h"

namespace aplus {
namespace {

PropRef Amt() { return PropRef{PropSite::kAdjEdge, 0, false, false}; }
PropRef Date() { return PropRef{PropSite::kAdjEdge, 1, false, false}; }
PropRef EbAmt() { return PropRef{PropSite::kBoundEdge, 0, false, false}; }

Comparison Const(PropRef ref, CmpOp op, int64_t v) {
  Comparison cmp;
  cmp.lhs = ref;
  cmp.op = op;
  cmp.rhs_is_const = true;
  cmp.rhs_const = Value::Int64(v);
  return cmp;
}

Comparison Ref(PropRef lhs, CmpOp op, PropRef rhs, int64_t addend = 0) {
  Comparison cmp;
  cmp.lhs = lhs;
  cmp.op = op;
  cmp.rhs_is_const = false;
  cmp.rhs_ref = rhs;
  cmp.rhs_addend = addend;
  return cmp;
}

TEST(ConjunctImpliesTest, ExactMatch) {
  EXPECT_TRUE(ConjunctImplies(Const(Amt(), CmpOp::kGt, 100), Const(Amt(), CmpOp::kGt, 100)));
}

TEST(ConjunctImpliesTest, PaperRangeExample) {
  // Query eadj.amt > 15000 implies index eadj.amt > 10000 (Section IV-A).
  EXPECT_TRUE(ConjunctImplies(Const(Amt(), CmpOp::kGt, 15000), Const(Amt(), CmpOp::kGt, 10000)));
  // ... but not the other way around.
  EXPECT_FALSE(ConjunctImplies(Const(Amt(), CmpOp::kGt, 10000), Const(Amt(), CmpOp::kGt, 15000)));
}

TEST(ConjunctImpliesTest, MixedOperators) {
  EXPECT_TRUE(ConjunctImplies(Const(Amt(), CmpOp::kGe, 11), Const(Amt(), CmpOp::kGt, 10)));
  EXPECT_FALSE(ConjunctImplies(Const(Amt(), CmpOp::kGe, 10), Const(Amt(), CmpOp::kGt, 10)));
  EXPECT_TRUE(ConjunctImplies(Const(Amt(), CmpOp::kLt, 5), Const(Amt(), CmpOp::kLe, 5)));
  EXPECT_TRUE(ConjunctImplies(Const(Amt(), CmpOp::kEq, 7), Const(Amt(), CmpOp::kLt, 10)));
  EXPECT_TRUE(ConjunctImplies(Const(Amt(), CmpOp::kEq, 7), Const(Amt(), CmpOp::kGe, 7)));
  EXPECT_FALSE(ConjunctImplies(Const(Amt(), CmpOp::kEq, 17), Const(Amt(), CmpOp::kLt, 10)));
  EXPECT_TRUE(ConjunctImplies(Const(Amt(), CmpOp::kEq, 3), Const(Amt(), CmpOp::kNe, 10)));
  EXPECT_TRUE(ConjunctImplies(Const(Amt(), CmpOp::kLt, 10), Const(Amt(), CmpOp::kNe, 10)));
}

TEST(ConjunctImpliesTest, DifferentPropertiesNeverImply) {
  EXPECT_FALSE(ConjunctImplies(Const(Amt(), CmpOp::kGt, 100), Const(Date(), CmpOp::kGt, 1)));
}

TEST(ConjunctImpliesTest, RefVsRefExactAndFlipped) {
  Comparison q = Ref(EbAmt(), CmpOp::kGt, Amt());   // eb.amt > eadj.amt
  Comparison i1 = Ref(EbAmt(), CmpOp::kGt, Amt());  // same
  Comparison i2 = Ref(Amt(), CmpOp::kLt, EbAmt());  // flipped spelling
  EXPECT_TRUE(ConjunctImplies(q, i1));
  EXPECT_TRUE(ConjunctImplies(q, i2));
}

TEST(ConjunctImpliesTest, AddendRange) {
  // eadj.amt < eb.amt + 100 implies eadj.amt < eb.amt + 500.
  Comparison tight = Ref(Amt(), CmpOp::kLt, EbAmt(), 100);
  Comparison loose = Ref(Amt(), CmpOp::kLt, EbAmt(), 500);
  EXPECT_TRUE(ConjunctImplies(tight, loose));
  EXPECT_FALSE(ConjunctImplies(loose, tight));
}

TEST(PredicateSubsumesTest, EmptyIndexPredicateAlwaysSubsumes) {
  Predicate index;
  Predicate query;
  query.Add(Const(Amt(), CmpOp::kGt, 5));
  Predicate residual;
  EXPECT_TRUE(PredicateSubsumes(index, query, &residual));
  EXPECT_EQ(residual.conjuncts().size(), 1u);  // nothing covered
}

TEST(PredicateSubsumesTest, CoveredConjunctsDropFromResidual) {
  Predicate index;
  index.Add(Const(Amt(), CmpOp::kGt, 100));
  Predicate query;
  query.Add(Const(Amt(), CmpOp::kGt, 100));  // exactly guaranteed
  query.Add(Const(Date(), CmpOp::kLt, 50));  // extra
  Predicate residual;
  EXPECT_TRUE(PredicateSubsumes(index, query, &residual));
  ASSERT_EQ(residual.conjuncts().size(), 1u);
  EXPECT_EQ(residual.conjuncts()[0].lhs.key, Date().key);
}

TEST(PredicateSubsumesTest, StricterQueryKeepsResidual) {
  Predicate index;
  index.Add(Const(Amt(), CmpOp::kGt, 10000));
  Predicate query;
  query.Add(Const(Amt(), CmpOp::kGt, 15000));
  Predicate residual;
  EXPECT_TRUE(PredicateSubsumes(index, query, &residual));
  // The index guarantees > 10000 but not > 15000: the query conjunct
  // must be re-checked.
  ASSERT_EQ(residual.conjuncts().size(), 1u);
}

TEST(PredicateSubsumesTest, FailsWhenIndexIsMoreSelective) {
  Predicate index;
  index.Add(Const(Amt(), CmpOp::kGt, 100));
  Predicate query;  // query wants ALL edges
  EXPECT_FALSE(PredicateSubsumes(index, query, nullptr));
}

TEST(PredicateSubsumesTest, MultiConjunctIndex) {
  Predicate index;
  index.Add(Const(Amt(), CmpOp::kGt, 10));
  index.Add(Const(Date(), CmpOp::kLt, 100));
  Predicate query;
  query.Add(Const(Amt(), CmpOp::kGt, 20));
  query.Add(Const(Date(), CmpOp::kLt, 100));
  EXPECT_TRUE(PredicateSubsumes(index, query, nullptr));
  // Remove one query conjunct -> index conjunct unsupported -> fail.
  Predicate query2;
  query2.Add(Const(Amt(), CmpOp::kGt, 20));
  EXPECT_FALSE(PredicateSubsumes(index, query2, nullptr));
}

}  // namespace
}  // namespace aplus
