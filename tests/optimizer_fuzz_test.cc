// Randomized end-to-end correctness: random small graphs, random
// connected query shapes with random labels/predicates, random index
// configurations (including secondary VP/EP indexes) — the optimizer's
// plan must always count exactly what brute-force enumeration counts.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/database.h"
#include "datagen/financial_props.h"
#include "datagen/label_assigner.h"
#include "datagen/power_law_generator.h"
#include "util/rng.h"

namespace aplus {
namespace {

// Brute force: enumerate vertex assignments (pruning each new vertex by
// the query edges to already-assigned vertices, so connected queries
// stay tractable), then all edge bindings.
class BruteForcer {
 public:
  BruteForcer(const Graph& graph, const QueryGraph& query) : graph_(graph), query_(query) {
    // Adjacency for candidate pruning.
    out_.resize(graph.num_vertices());
    in_.resize(graph.num_vertices());
    for (edge_id_t e = 0; e < graph.num_edges(); ++e) {
      out_[graph.edge_src(e)].push_back(graph.edge_dst(e));
      in_[graph.edge_dst(e)].push_back(graph.edge_src(e));
    }
  }

  uint64_t Count() {
    MatchState state;
    state.Reset(query_.num_vertices(), query_.num_edges());
    count_ = 0;
    RecurseVertices(0, &state);
    return count_;
  }

 private:
  void RecurseVertices(int var, MatchState* state) {
    if (var == query_.num_vertices()) {
      BindEdges(0, state);
      return;
    }
    const QueryVertex& qv = query_.vertex(var);
    // Candidates: neighbours along any query edge to an assigned vertex
    // (vertices are assigned in order, so queries built with a spanning
    // chain always have one); otherwise all vertices.
    std::vector<vertex_id_t> candidates;
    bool restricted = false;
    for (int qe = 0; qe < query_.num_edges() && !restricted; ++qe) {
      const QueryEdge& edge = query_.edge(qe);
      if (edge.from == var && edge.to < var) {
        candidates = in_[state->v[edge.to]];
        restricted = true;
      } else if (edge.to == var && edge.from < var) {
        candidates = out_[state->v[edge.from]];
        restricted = true;
      }
    }
    if (!restricted) {
      candidates.resize(graph_.num_vertices());
      for (vertex_id_t v = 0; v < graph_.num_vertices(); ++v) candidates[v] = v;
    } else {
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
    }
    for (vertex_id_t v : candidates) {
      if (qv.bound != kInvalidVertex && qv.bound != v) continue;
      if (qv.label != kInvalidLabel && graph_.vertex_label(v) != qv.label) continue;
      if (state->VertexAlreadyBound(v)) continue;
      state->v[var] = v;
      RecurseVertices(var + 1, state);
      state->v[var] = kInvalidVertex;
    }
  }

  void BindEdges(int qe, MatchState* state) {
    if (qe == query_.num_edges()) {
      for (const QueryComparison& cmp : query_.predicates()) {
        if (!EvalQueryComparison(graph_, cmp, *state)) return;
      }
      ++count_;
      return;
    }
    const QueryEdge& edge = query_.edge(qe);
    for (edge_id_t e = 0; e < graph_.num_edges(); ++e) {
      if (graph_.edge_src(e) != state->v[edge.from]) continue;
      if (graph_.edge_dst(e) != state->v[edge.to]) continue;
      if (edge.label != kInvalidLabel && graph_.edge_label(e) != edge.label) continue;
      if (state->EdgeAlreadyBound(e)) continue;
      state->e[qe] = e;
      BindEdges(qe + 1, state);
      state->e[qe] = kInvalidEdge;
    }
  }

  const Graph& graph_;
  const QueryGraph& query_;
  std::vector<std::vector<vertex_id_t>> out_;
  std::vector<std::vector<vertex_id_t>> in_;
  uint64_t count_ = 0;
};

// Random connected query: a spanning chain plus random extra edges.
QueryGraph RandomQuery(Rng* rng, const Graph& graph, const FinancialPropKeys& keys) {
  QueryGraph query;
  int n = 3 + static_cast<int>(rng->NextBounded(2));  // 3..4 vertices
  for (int i = 0; i < n; ++i) {
    label_t label = kInvalidLabel;
    if (rng->NextDouble() < 0.5) {
      label = static_cast<label_t>(rng->NextBounded(graph.catalog().num_vertex_labels()));
    }
    query.AddVertex("q" + std::to_string(i), label);
  }
  auto random_edge_label = [&]() -> label_t {
    if (rng->NextDouble() < 0.6) {
      return static_cast<label_t>(rng->NextBounded(graph.catalog().num_edge_labels()));
    }
    return kInvalidLabel;
  };
  // Spanning chain with random orientation.
  for (int i = 1; i < n; ++i) {
    if (rng->NextDouble() < 0.5) {
      query.AddEdge(i - 1, i, random_edge_label());
    } else {
      query.AddEdge(i, i - 1, random_edge_label());
    }
  }
  // Extra edges (may create cycles / multi-edges).
  int extra = static_cast<int>(rng->NextBounded(3));
  for (int i = 0; i < extra; ++i) {
    int a = static_cast<int>(rng->NextBounded(n));
    int b = static_cast<int>(rng->NextBounded(n));
    if (a == b) continue;
    query.AddEdge(a, b, random_edge_label());
  }
  // Pin one vertex sometimes (keeps brute force fast too).
  if (rng->NextDouble() < 0.6) {
    query.mutable_vertex(0).bound =
        static_cast<vertex_id_t>(rng->NextBounded(graph.num_vertices()));
    query.mutable_vertex(0).label = kInvalidLabel;
  }
  // Random predicates from the workload menu.
  if (rng->NextDouble() < 0.5) {
    QueryComparison amount;
    amount.lhs = QueryPropRef{0, true, keys.amount, false};
    amount.op = rng->NextDouble() < 0.5 ? CmpOp::kGt : CmpOp::kLt;
    amount.rhs_const = Value::Int64(rng->NextInRange(1, 1000));
    query.AddPredicate(amount);
  }
  if (rng->NextDouble() < 0.4 && query.num_vertices() >= 3) {
    QueryComparison city_eq;
    city_eq.lhs = QueryPropRef{1, false, keys.city, false};
    city_eq.op = CmpOp::kEq;
    city_eq.rhs_is_const = false;
    city_eq.rhs_ref = QueryPropRef{2, false, keys.city, false};
    query.AddPredicate(city_eq);
  }
  if (rng->NextDouble() < 0.4 && query.num_edges() >= 2) {
    QueryComparison flow;
    flow.lhs = QueryPropRef{0, true, keys.date, false};
    flow.op = CmpOp::kLt;
    flow.rhs_is_const = false;
    flow.rhs_ref = QueryPropRef{1, true, keys.date, false};
    query.AddPredicate(flow);
  }
  return query;
}

class OptimizerFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerFuzzTest, PlansMatchBruteForce) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed * 7919 + 13);

  Graph graph;
  PowerLawParams params;
  params.num_vertices = 150 + rng.NextBounded(100);
  params.avg_degree = 3.0 + rng.NextDouble() * 3.0;
  params.seed = seed + 1;
  GeneratePowerLawGraph(params, &graph);
  AssignRandomLabels(2, 2, seed + 2, &graph);
  FinancialPropKeys keys = AddFinancialProperties(seed + 3, &graph, 10);

  Database db(std::move(graph));

  // Random primary configuration.
  IndexConfig config;
  switch (rng.NextBounded(4)) {
    case 0:
      config = IndexConfig::Flat();
      break;
    case 1:
      config = IndexConfig::Default();
      break;
    case 2:
      config = IndexConfig::Default();
      config.partitions.push_back({PartitionSource::kNbrLabel, kInvalidPropKey});
      break;
    default:
      config = IndexConfig::Default();
      config.sorts.clear();
      config.sorts.push_back({SortSource::kNbrLabel, kInvalidPropKey});
      config.sorts.push_back({SortSource::kNbrId, kInvalidPropKey});
      break;
  }
  db.BuildPrimaryIndexes(config);

  // Random secondary indexes.
  if (rng.NextDouble() < 0.5) {
    IndexConfig vpc = IndexConfig::Default();
    vpc.sorts.clear();
    vpc.sorts.push_back({SortSource::kNbrProp, keys.city});
    db.CreateVpIndex("VPc", Predicate(), vpc, Direction::kFwd);
    db.CreateVpIndex("VPc", Predicate(), vpc, Direction::kBwd);
  }
  if (rng.NextDouble() < 0.4) {
    Predicate large;
    large.AddConst(PropRef{PropSite::kAdjEdge, keys.amount, false, false}, CmpOp::kGt,
                   Value::Int64(500));
    db.CreateVpIndex("big", large, IndexConfig::Default(), Direction::kFwd);
  }
  if (rng.NextDouble() < 0.4) {
    Predicate flow;
    flow.AddRef(PropRef{PropSite::kBoundEdge, keys.date, false, false}, CmpOp::kLt,
                PropRef{PropSite::kAdjEdge, keys.date, false, false});
    db.CreateEpIndex("flow", EpKind::kDstFwd, flow, IndexConfig::Default());
  }

  for (int q = 0; q < 4; ++q) {
    QueryGraph query = RandomQuery(&rng, db.graph(), keys);
    uint64_t expected = BruteForcer(db.graph(), query).Count();
    QueryOutcome result = db.Execute(query);
    ASSERT_EQ(result.count, expected)
        << "seed=" << seed << " query=" << q << "\nplan:\n"
        << result.plan;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerFuzzTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace aplus
