#include <gtest/gtest.h>

#include <set>

#include "datagen/example_graph.h"
#include "datagen/financial_props.h"
#include "datagen/power_law_generator.h"
#include "index/maintenance.h"
#include "util/rng.h"

namespace aplus {
namespace {

std::set<edge_id_t> SliceEdges(const AdjListSlice& slice) {
  std::set<edge_id_t> edges;
  for (uint32_t i = 0; i < slice.size(); ++i) edges.insert(slice.EdgeAt(i));
  return edges;
}

TEST(MaintenanceTest, PrimaryInsertThenFlushMatchesRebuild) {
  // Load half the edges via Build, insert the rest one at a time, flush,
  // and compare against an index built over the whole graph.
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 1500;
  params.avg_degree = 6.0;
  GeneratePowerLawGraph(params, &graph);

  // Snapshot all edges, rebuild a half-graph, then stream the rest.
  struct EdgeTriple {
    vertex_id_t src, dst;
    label_t label;
  };
  std::vector<EdgeTriple> all;
  for (edge_id_t e = 0; e < graph.num_edges(); ++e) {
    all.push_back({graph.edge_src(e), graph.edge_dst(e), graph.edge_label(e)});
  }
  Graph half;
  label_t vlabel = half.catalog().AddVertexLabel("V");
  half.catalog().AddEdgeLabel("E");
  for (vertex_id_t v = 0; v < graph.num_vertices(); ++v) half.AddVertex(vlabel);
  size_t split = all.size() / 2;
  for (size_t i = 0; i < split; ++i) half.AddEdge(all[i].src, all[i].dst, all[i].label);

  IndexStore store(&half);
  store.BuildPrimary(IndexConfig::Default());
  Maintainer maintainer(&half, &store);
  for (size_t i = split; i < all.size(); ++i) {
    edge_id_t e = half.AddEdge(all[i].src, all[i].dst, all[i].label);
    maintainer.OnEdgeInserted(e);
  }
  maintainer.Finalize();
  EXPECT_FALSE(store.HasPendingUpdates());
  EXPECT_EQ(store.primary(Direction::kFwd)->num_edges_indexed(), half.num_edges());

  IndexStore reference(&half);
  reference.BuildPrimary(IndexConfig::Default());
  for (vertex_id_t v = 0; v < half.num_vertices(); ++v) {
    EXPECT_EQ(SliceEdges(store.primary(Direction::kFwd)->GetFullList(v)),
              SliceEdges(reference.primary(Direction::kFwd)->GetFullList(v)))
        << "v=" << v;
    EXPECT_EQ(SliceEdges(store.primary(Direction::kBwd)->GetFullList(v)),
              SliceEdges(reference.primary(Direction::kBwd)->GetFullList(v)))
        << "v=" << v;
  }
}

TEST(MaintenanceTest, DeletionsTombstoneAndMerge) {
  ExampleGraph ex = BuildExampleGraph();
  IndexStore store(&ex.graph);
  store.BuildPrimary(IndexConfig::Default());
  Maintainer maintainer(&ex.graph, &store);
  // Delete t4 (v1 -W-> v3).
  maintainer.OnEdgeDeleted(ex.transfers[3]);
  maintainer.Finalize();
  std::set<edge_id_t> v1_out = SliceEdges(store.primary(Direction::kFwd)->GetFullList(ex.accounts[0]));
  EXPECT_EQ(v1_out.count(ex.transfers[3]), 0u);
  EXPECT_EQ(v1_out.size(), 3u);
  std::set<edge_id_t> v3_in = SliceEdges(store.primary(Direction::kBwd)->GetFullList(ex.accounts[2]));
  EXPECT_EQ(v3_in.count(ex.transfers[3]), 0u);
}

TEST(MaintenanceTest, VpIndexTracksInserts) {
  ExampleGraph ex = BuildExampleGraph();
  IndexStore store(&ex.graph);
  store.BuildPrimary(IndexConfig::Default());
  OneHopViewDef view;
  view.name = "large";
  view.pred.AddConst(PropRef{PropSite::kAdjEdge, ex.amount_key, false, false}, CmpOp::kGt,
                     Value::Int64(100));
  VpIndex* vp = store.CreateVpIndex(view, IndexConfig::Default(), Direction::kFwd);
  uint64_t before = vp->num_edges_indexed();

  Maintainer maintainer(&ex.graph, &store);
  // New transfer v1 -W-> v2 with amount 500 (passes the view predicate).
  edge_id_t e = ex.graph.AddEdge(ex.accounts[0], ex.accounts[1], ex.wire_label);
  ex.graph.edge_props().mutable_column(ex.amount_key)->SetInt64(e, 500);
  ex.graph.edge_props().mutable_column(ex.date_key)->SetInt64(e, 21);
  maintainer.OnEdgeInserted(e);
  maintainer.Finalize();
  EXPECT_EQ(vp->num_edges_indexed(), before + 1);
  EXPECT_TRUE(SliceEdges(vp->GetFullList(ex.accounts[0])).count(e) > 0);

  // And one failing the predicate.
  edge_id_t small = ex.graph.AddEdge(ex.accounts[0], ex.accounts[2], ex.wire_label);
  ex.graph.edge_props().mutable_column(ex.amount_key)->SetInt64(small, 1);
  ex.graph.edge_props().mutable_column(ex.date_key)->SetInt64(small, 22);
  maintainer.OnEdgeInserted(small);
  maintainer.Finalize();
  EXPECT_EQ(vp->num_edges_indexed(), before + 1);
  EXPECT_EQ(SliceEdges(vp->GetFullList(ex.accounts[0])).count(small), 0u);
}

TEST(MaintenanceTest, EpIndexDeltaQueriesOnInsert) {
  ExampleGraph ex = BuildExampleGraph();
  IndexStore store(&ex.graph);
  store.BuildPrimary(IndexConfig::Default());
  TwoHopViewDef view;
  view.name = "MoneyFlow";
  view.kind = EpKind::kDstFwd;
  view.pred.AddRef(PropRef{PropSite::kBoundEdge, ex.date_key, false, false}, CmpOp::kLt,
                   PropRef{PropSite::kAdjEdge, ex.date_key, false, false});
  view.pred.AddRef(PropRef{PropSite::kBoundEdge, ex.amount_key, false, false}, CmpOp::kGt,
                   PropRef{PropSite::kAdjEdge, ex.amount_key, false, false});
  EpIndex* ep = store.CreateEpIndex(view, IndexConfig::Default());

  Maintainer maintainer(&ex.graph, &store);
  // New edge from v5 (dst of t13) with a later date and smaller amount
  // than t13: must join t13's MoneyFlow list.
  edge_id_t e = ex.graph.AddEdge(ex.accounts[4], ex.accounts[0], ex.wire_label);
  ex.graph.edge_props().mutable_column(ex.amount_key)->SetInt64(e, 2);
  ex.graph.edge_props().mutable_column(ex.date_key)->SetInt64(e, 30);
  maintainer.OnEdgeInserted(e);
  maintainer.Finalize();
  std::set<edge_id_t> t13_list = SliceEdges(ep->GetFullList(ex.transfers[12]));
  EXPECT_TRUE(t13_list.count(e) > 0);
  EXPECT_TRUE(t13_list.count(ex.transfers[18]) > 0);  // t19 still there

  // The new edge also gets its own list (possibly empty).
  AdjListSlice own = ep->GetFullList(e);
  for (uint32_t i = 0; i < own.size(); ++i) {
    EXPECT_EQ(ex.graph.edge_src(own.EdgeAt(i)), ex.accounts[0]);
  }
}

TEST(MaintenanceTest, StreamedHalfEqualsBulkBuildForSecondaryIndexes) {
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 800;
  params.avg_degree = 5.0;
  GeneratePowerLawGraph(params, &graph);
  AddFinancialProperties(23, &graph, 20);
  prop_key_t amount = graph.catalog().FindProperty("amount", PropTargetKind::kEdge);
  prop_key_t date = graph.catalog().FindProperty("date", PropTargetKind::kEdge);

  // Reference: everything bulk-built.
  IndexStore reference(&graph);
  reference.BuildPrimary(IndexConfig::Default());
  OneHopViewDef vp_view;
  vp_view.name = "big";
  vp_view.pred.AddConst(PropRef{PropSite::kAdjEdge, amount, false, false}, CmpOp::kGt,
                        Value::Int64(500));
  VpIndex* vp_ref = reference.CreateVpIndex(vp_view, IndexConfig::Default(), Direction::kFwd);
  TwoHopViewDef ep_view;
  ep_view.name = "flow";
  ep_view.kind = EpKind::kDstFwd;
  ep_view.pred.AddRef(PropRef{PropSite::kBoundEdge, date, false, false}, CmpOp::kLt,
                      PropRef{PropSite::kAdjEdge, date, false, false});
  EpIndex* ep_ref = reference.CreateEpIndex(ep_view, IndexConfig::Default());

  // Streamed: rebuild on a graph prefix, then insert the tail.
  // To keep edge ids aligned we rebuild the same Graph object's indexes
  // from scratch and replay inserts (graph storage already has all
  // edges; the indexes start from a half-empty view by building against
  // a prefix-truncated copy).
  Graph prefix;
  label_t vlabel = prefix.catalog().AddVertexLabel("V");
  prefix.catalog().AddEdgeLabel("E");
  for (vertex_id_t v = 0; v < graph.num_vertices(); ++v) prefix.AddVertex(vlabel);
  prefix.AddVertexProperty("acc", ValueType::kCategory, kNumAccountTypes);
  prefix.AddVertexProperty("city", ValueType::kCategory, 20);
  prop_key_t p_amount = prefix.AddEdgeProperty("amount", ValueType::kInt64);
  prop_key_t p_date = prefix.AddEdgeProperty("date", ValueType::kInt64);

  size_t split = graph.num_edges() / 2;
  auto copy_edge = [&](edge_id_t e) {
    edge_id_t ne = prefix.AddEdge(graph.edge_src(e), graph.edge_dst(e), graph.edge_label(e));
    prefix.edge_props().mutable_column(p_amount)->SetInt64(
        ne, graph.edge_props().Get(amount, e).AsInt64());
    prefix.edge_props().mutable_column(p_date)->SetInt64(
        ne, graph.edge_props().Get(date, e).AsInt64());
    return ne;
  };
  for (edge_id_t e = 0; e < split; ++e) copy_edge(e);

  IndexStore streamed(&prefix);
  streamed.BuildPrimary(IndexConfig::Default());
  OneHopViewDef vp_view2 = vp_view;
  vp_view2.pred = Predicate();
  vp_view2.pred.AddConst(PropRef{PropSite::kAdjEdge, p_amount, false, false}, CmpOp::kGt,
                         Value::Int64(500));
  VpIndex* vp_str = streamed.CreateVpIndex(vp_view2, IndexConfig::Default(), Direction::kFwd);
  TwoHopViewDef ep_view2 = ep_view;
  ep_view2.pred = Predicate();
  ep_view2.pred.AddRef(PropRef{PropSite::kBoundEdge, p_date, false, false}, CmpOp::kLt,
                       PropRef{PropSite::kAdjEdge, p_date, false, false});
  EpIndex* ep_str = streamed.CreateEpIndex(ep_view2, IndexConfig::Default());

  Maintainer maintainer(&prefix, &streamed);
  for (edge_id_t e = split; e < graph.num_edges(); ++e) {
    edge_id_t ne = copy_edge(e);
    maintainer.OnEdgeInserted(ne);
  }
  maintainer.Finalize();

  EXPECT_EQ(vp_str->num_edges_indexed(), vp_ref->num_edges_indexed());
  EXPECT_EQ(ep_str->num_edges_indexed(), ep_ref->num_edges_indexed());
  for (vertex_id_t v = 0; v < graph.num_vertices(); v += 7) {
    EXPECT_EQ(SliceEdges(vp_str->GetFullList(v)), SliceEdges(vp_ref->GetFullList(v))) << v;
  }
  for (edge_id_t e = 0; e < graph.num_edges(); e += 13) {
    EXPECT_EQ(SliceEdges(ep_str->GetFullList(e)), SliceEdges(ep_ref->GetFullList(e))) << e;
  }
}

}  // namespace
}  // namespace aplus
