#include <gtest/gtest.h>

#include "datagen/example_graph.h"
#include "view/predicate.h"

namespace aplus {
namespace {

class PredicateTest : public ::testing::Test {
 protected:
  PredicateTest() : ex_(BuildExampleGraph()) {}

  EvalContext Ctx(edge_id_t adj, vertex_id_t nbr) const {
    EvalContext ctx;
    ctx.graph = &ex_.graph;
    ctx.adj_edge = adj;
    ctx.nbr = nbr;
    ctx.src = ex_.graph.edge_src(adj);
    ctx.dst = ex_.graph.edge_dst(adj);
    return ctx;
  }

  ExampleGraph ex_;
};

TEST_F(PredicateTest, ConstComparisonOnEdgeProp) {
  Predicate pred;
  pred.AddConst(PropRef{PropSite::kAdjEdge, ex_.amount_key, false, false}, CmpOp::kGt,
                Value::Int64(100));
  // t4 has amount 200, t19 has amount 5.
  EXPECT_TRUE(pred.Eval(Ctx(ex_.transfers[3], ex_.graph.edge_dst(ex_.transfers[3]))));
  EXPECT_FALSE(pred.Eval(Ctx(ex_.transfers[18], ex_.graph.edge_dst(ex_.transfers[18]))));
}

TEST_F(PredicateTest, CategoryEquality) {
  Predicate pred;
  pred.AddConst(PropRef{PropSite::kAdjEdge, ex_.currency_key, false, false}, CmpOp::kEq,
                Value::Category(kCurrencyEur));
  EXPECT_TRUE(pred.Eval(Ctx(ex_.transfers[3], 0)));    // t4 EUR
  EXPECT_FALSE(pred.Eval(Ctx(ex_.transfers[0], 0)));   // t1 USD
}

TEST_F(PredicateTest, LabelPseudoProperty) {
  Predicate pred;
  PropRef label_ref;
  label_ref.site = PropSite::kAdjEdge;
  label_ref.is_label = true;
  pred.AddConst(label_ref, CmpOp::kEq, Value::Int64(ex_.wire_label));
  EXPECT_TRUE(pred.Eval(Ctx(ex_.transfers[3], 0)));   // t4 is Wire
  EXPECT_FALSE(pred.Eval(Ctx(ex_.transfers[0], 0)));  // t1 is DD
}

TEST_F(PredicateTest, VertexIdPseudoProperty) {
  Predicate pred;
  PropRef id_ref;
  id_ref.site = PropSite::kNbrVertex;
  id_ref.is_id = true;
  pred.AddConst(id_ref, CmpOp::kLt, Value::Int64(2));
  EXPECT_TRUE(pred.Eval(Ctx(ex_.transfers[0], 1)));
  EXPECT_FALSE(pred.Eval(Ctx(ex_.transfers[0], 5)));
}

TEST_F(PredicateTest, CrossEdgeComparisonWithAddend) {
  // eadj.amt < eb.amt + 50
  Predicate pred;
  pred.AddRef(PropRef{PropSite::kAdjEdge, ex_.amount_key, false, false}, CmpOp::kLt,
              PropRef{PropSite::kBoundEdge, ex_.amount_key, false, false}, 50);
  EvalContext ctx = Ctx(ex_.transfers[18], 0);  // eadj = t19, amount 5
  ctx.bound_edge = ex_.transfers[12];           // eb = t13, amount 10
  EXPECT_TRUE(pred.Eval(ctx));                  // 5 < 10 + 50
  ctx.bound_edge = ex_.transfers[18];
  ctx.adj_edge = ex_.transfers[3];  // 200 < 5 + 50 is false
  EXPECT_FALSE(pred.Eval(ctx));
}

TEST_F(PredicateTest, CrossEdgeDetection) {
  Predicate pred;
  pred.AddRef(PropRef{PropSite::kBoundEdge, ex_.date_key, false, false}, CmpOp::kLt,
              PropRef{PropSite::kAdjEdge, ex_.date_key, false, false});
  EXPECT_TRUE(pred.HasCrossEdgeConjunct());

  Predicate single;
  single.AddConst(PropRef{PropSite::kAdjEdge, ex_.amount_key, false, false}, CmpOp::kLt,
                  Value::Int64(100));
  EXPECT_FALSE(single.HasCrossEdgeConjunct());
}

TEST_F(PredicateTest, NullComparesFalse) {
  // Customer vertices have no acc property -> predicate false.
  Predicate pred;
  pred.AddConst(PropRef{PropSite::kNbrVertex, ex_.acc_key, false, false}, CmpOp::kEq,
                Value::Category(0));
  EvalContext ctx = Ctx(ex_.owns[0], ex_.customers[0]);
  EXPECT_FALSE(pred.Eval(ctx));
}

TEST_F(PredicateTest, EmptyPredicateIsTrue) {
  Predicate pred;
  EXPECT_TRUE(pred.IsTrue());
  EXPECT_TRUE(pred.Eval(Ctx(ex_.transfers[0], 0)));
}

TEST_F(PredicateTest, ToStringRendersKeywords) {
  Predicate pred;
  pred.AddConst(PropRef{PropSite::kAdjEdge, ex_.amount_key, false, false}, CmpOp::kGt,
                Value::Int64(10000));
  std::string text = pred.ToString(ex_.graph.catalog());
  EXPECT_NE(text.find("eadj.amount"), std::string::npos);
  EXPECT_NE(text.find(">"), std::string::npos);
}

TEST(CmpOpTest, FlipIsInvolutionCompatible) {
  EXPECT_EQ(Flip(CmpOp::kLt), CmpOp::kGt);
  EXPECT_EQ(Flip(CmpOp::kGe), CmpOp::kLe);
  EXPECT_EQ(Flip(CmpOp::kEq), CmpOp::kEq);
  EXPECT_EQ(Flip(Flip(CmpOp::kLe)), CmpOp::kLe);
}

TEST(ApplyCmpTest, AllOperators) {
  EXPECT_TRUE(ApplyCmp(CmpOp::kEq, 0));
  EXPECT_FALSE(ApplyCmp(CmpOp::kEq, 1));
  EXPECT_TRUE(ApplyCmp(CmpOp::kNe, -1));
  EXPECT_TRUE(ApplyCmp(CmpOp::kLt, -1));
  EXPECT_TRUE(ApplyCmp(CmpOp::kLe, 0));
  EXPECT_TRUE(ApplyCmp(CmpOp::kGt, 1));
  EXPECT_TRUE(ApplyCmp(CmpOp::kGe, 0));
  EXPECT_FALSE(ApplyCmp(CmpOp::kGe, -1));
}

}  // namespace
}  // namespace aplus
