#include <gtest/gtest.h>

#include "datagen/example_graph.h"
#include "index/index_store.h"

namespace aplus {
namespace {

class IndexStoreTest : public ::testing::Test {
 protected:
  IndexStoreTest() : ex_(BuildExampleGraph()), store_(&ex_.graph) {
    store_.BuildPrimary(IndexConfig::Default());
  }

  OneHopViewDef LargeView() {
    OneHopViewDef view;
    view.name = "large";
    view.pred.AddConst(PropRef{PropSite::kAdjEdge, ex_.amount_key, false, false}, CmpOp::kGt,
                       Value::Int64(100));
    return view;
  }

  TwoHopViewDef FlowView() {
    TwoHopViewDef view;
    view.name = "flow";
    view.kind = EpKind::kDstFwd;
    view.pred.AddRef(PropRef{PropSite::kBoundEdge, ex_.date_key, false, false}, CmpOp::kLt,
                     PropRef{PropSite::kAdjEdge, ex_.date_key, false, false});
    return view;
  }

  ExampleGraph ex_;
  IndexStore store_;
};

TEST_F(IndexStoreTest, VersionBumpsOnEveryIndexChange) {
  uint64_t v0 = store_.version();
  store_.BuildPrimary(IndexConfig::Default());
  uint64_t v1 = store_.version();
  EXPECT_GT(v1, v0);
  store_.CreateVpIndex(LargeView(), IndexConfig::Default(), Direction::kFwd);
  uint64_t v2 = store_.version();
  EXPECT_GT(v2, v1);
  store_.CreateEpIndex(FlowView(), IndexConfig::Default());
  uint64_t v3 = store_.version();
  EXPECT_GT(v3, v2);
  store_.DropSecondaryIndexes();
  EXPECT_GT(store_.version(), v3);
}

TEST_F(IndexStoreTest, FindByNameAndDirection) {
  store_.CreateVpIndex(LargeView(), IndexConfig::Default(), Direction::kFwd);
  store_.CreateVpIndex(LargeView(), IndexConfig::Default(), Direction::kBwd);
  store_.CreateEpIndex(FlowView(), IndexConfig::Default());
  EXPECT_NE(store_.FindVpIndex("large", Direction::kFwd), nullptr);
  EXPECT_NE(store_.FindVpIndex("large", Direction::kBwd), nullptr);
  EXPECT_EQ(store_.FindVpIndex("large", Direction::kFwd)->direction(), Direction::kFwd);
  EXPECT_EQ(store_.FindVpIndex("missing", Direction::kFwd), nullptr);
  EXPECT_NE(store_.FindEpIndex("flow"), nullptr);
  EXPECT_EQ(store_.FindEpIndex("missing"), nullptr);
}

TEST_F(IndexStoreTest, MemoryAndEdgeAccounting) {
  size_t primary_bytes = store_.PrimaryMemoryBytes();
  EXPECT_GT(primary_bytes, 0u);
  EXPECT_EQ(store_.SecondaryMemoryBytes(), 0u);
  uint64_t edges_primary_only = store_.TotalEdgesIndexed();
  EXPECT_EQ(edges_primary_only, ex_.graph.num_edges());

  store_.CreateVpIndex(LargeView(), IndexConfig::Default(), Direction::kFwd);
  EXPECT_GT(store_.SecondaryMemoryBytes(), 0u);
  EXPECT_GT(store_.TotalEdgesIndexed(), edges_primary_only);
  EXPECT_EQ(store_.TotalMemoryBytes(),
            store_.PrimaryMemoryBytes() + store_.SecondaryMemoryBytes());

  store_.DropSecondaryIndexes();
  EXPECT_EQ(store_.SecondaryMemoryBytes(), 0u);
  EXPECT_EQ(store_.TotalEdgesIndexed(), edges_primary_only);
}

TEST_F(IndexStoreTest, ReconfigureRebuildsSecondaries) {
  VpIndex* vp = store_.CreateVpIndex(LargeView(), IndexConfig::Default(), Direction::kFwd);
  uint64_t before = vp->num_edges_indexed();
  // Reconfigure the primary with a different sort; the secondary must be
  // rebuilt (offsets are invalidated) and keep indexing the same edges.
  IndexConfig resorted = IndexConfig::Default();
  resorted.sorts.clear();
  resorted.sorts.push_back({SortSource::kEdgeProp, ex_.date_key});
  store_.BuildPrimary(resorted);
  EXPECT_EQ(vp->num_edges_indexed(), before);
  // Contents still resolve correctly through the new primary layout.
  for (vertex_id_t v = 0; v < ex_.graph.num_vertices(); ++v) {
    AdjListSlice slice = vp->GetFullList(v);
    for (uint32_t i = 0; i < slice.size(); ++i) {
      edge_id_t e = slice.EdgeAt(i);
      EXPECT_GT(ex_.graph.edge_props().Get(ex_.amount_key, e).AsInt64(), 100);
      EXPECT_EQ(ex_.graph.edge_src(e), v);
    }
  }
}

TEST_F(IndexStoreTest, FlushAllIsIdempotent) {
  EXPECT_FALSE(store_.HasPendingUpdates());
  store_.FlushAll();
  EXPECT_FALSE(store_.HasPendingUpdates());
  // Inserting marks pending; flushing clears.
  edge_id_t e = ex_.graph.AddEdge(ex_.accounts[0], ex_.accounts[1], ex_.wire_label);
  ex_.graph.edge_props().mutable_column(ex_.amount_key)->SetInt64(e, 7);
  ex_.graph.edge_props().mutable_column(ex_.date_key)->SetInt64(e, 21);
  store_.primary(Direction::kFwd)->InsertEdge(e);
  store_.primary(Direction::kBwd)->InsertEdge(e);
  EXPECT_TRUE(store_.HasPendingUpdates());
  store_.FlushAll();
  EXPECT_FALSE(store_.HasPendingUpdates());
  EXPECT_EQ(store_.primary(Direction::kFwd)->num_edges_indexed(), ex_.graph.num_edges());
}

}  // namespace
}  // namespace aplus
