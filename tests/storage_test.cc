#include <gtest/gtest.h>

#include <cstdio>

#include "storage/csv_io.h"
#include "storage/graph.h"
#include "storage/graph_builder.h"

namespace aplus {
namespace {

TEST(ValueTest, CompareOrdersNullsLast) {
  EXPECT_GT(Value::Compare(Value::Null(), Value::Int64(5)), 0);
  EXPECT_LT(Value::Compare(Value::Int64(5), Value::Null()), 0);
  EXPECT_EQ(Value::Compare(Value::Null(), Value::Null()), 0);
}

TEST(ValueTest, NumericCrossTypeCompare) {
  EXPECT_LT(Value::Compare(Value::Int64(1), Value::Double(1.5)), 0);
  EXPECT_EQ(Value::Compare(Value::Int64(2), Value::Double(2.0)), 0);
  EXPECT_GT(Value::Compare(Value::Double(3.5), Value::Int64(3)), 0);
}

TEST(ValueTest, StringCompare) {
  EXPECT_LT(Value::Compare(Value::String("abc"), Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x"), Value::String("x"));
}

TEST(CatalogTest, LabelDictionaries) {
  Catalog catalog;
  label_t a = catalog.AddVertexLabel("Account");
  label_t c = catalog.AddVertexLabel("Customer");
  EXPECT_NE(a, c);
  EXPECT_EQ(catalog.AddVertexLabel("Account"), a);
  EXPECT_EQ(catalog.FindVertexLabel("Customer"), c);
  EXPECT_EQ(catalog.FindVertexLabel("Missing"), kInvalidLabel);
  EXPECT_EQ(catalog.VertexLabelName(a), "Account");
  EXPECT_EQ(catalog.num_vertex_labels(), 2u);
}

TEST(CatalogTest, PropertiesAreTargetScoped) {
  Catalog catalog;
  prop_key_t v_name = catalog.AddProperty("name", PropTargetKind::kVertex, ValueType::kString);
  prop_key_t e_name = catalog.AddProperty("name", PropTargetKind::kEdge, ValueType::kInt64);
  EXPECT_NE(v_name, e_name);
  EXPECT_EQ(catalog.FindProperty("name", PropTargetKind::kVertex), v_name);
  EXPECT_EQ(catalog.FindProperty("name", PropTargetKind::kEdge), e_name);
}

TEST(CatalogTest, CategoryValueNames) {
  Catalog catalog;
  prop_key_t key = catalog.AddProperty("currency", PropTargetKind::kEdge, ValueType::kCategory, 3);
  category_t usd = catalog.RegisterCategoryValue(key, "USD");
  category_t eur = catalog.RegisterCategoryValue(key, "EUR");
  EXPECT_EQ(usd, 0u);
  EXPECT_EQ(eur, 1u);
  EXPECT_EQ(catalog.RegisterCategoryValue(key, "USD"), usd);
  EXPECT_EQ(catalog.FindCategoryValue(key, "EUR"), eur);
  EXPECT_EQ(catalog.FindCategoryValue(key, "GBP"), kInvalidCategory);
}

TEST(PropertyColumnTest, NullsAndValues) {
  Catalog catalog;
  prop_key_t key = catalog.AddProperty("amt", PropTargetKind::kEdge, ValueType::kInt64);
  PropertyStore store(PropTargetKind::kEdge);
  store.Resize(4);
  PropertyColumn* col = store.AddColumn(catalog, key);
  EXPECT_TRUE(store.IsNull(key, 0));
  col->SetInt64(1, 42);
  EXPECT_FALSE(store.IsNull(key, 1));
  EXPECT_EQ(store.Get(key, 1).AsInt64(), 42);
  EXPECT_TRUE(store.Get(key, 0).is_null());
}

TEST(PropertyColumnTest, CategoryNullSlot) {
  Catalog catalog;
  prop_key_t key = catalog.AddProperty("cur", PropTargetKind::kEdge, ValueType::kCategory, 3);
  PropertyStore store(PropTargetKind::kEdge);
  store.Resize(2);
  PropertyColumn* col = store.AddColumn(catalog, key);
  col->SetCategory(0, 2);
  EXPECT_EQ(col->GetCategoryOrNullSlot(0), 2u);
  EXPECT_EQ(col->GetCategoryOrNullSlot(1), 3u);  // null -> extra slot
}

TEST(PropertyColumnTest, StringDictionaryDedup) {
  Catalog catalog;
  prop_key_t key = catalog.AddProperty("city", PropTargetKind::kVertex, ValueType::kString);
  PropertyStore store(PropTargetKind::kVertex);
  store.Resize(3);
  PropertyColumn* col = store.AddColumn(catalog, key);
  col->SetString(0, "SF");
  col->SetString(1, "SF");
  col->SetString(2, "LA");
  EXPECT_EQ(col->GetString(0), "SF");
  EXPECT_EQ(col->GetString(1), "SF");
  EXPECT_EQ(col->GetString(2), "LA");
}

TEST(GraphTest, AddVerticesAndEdges) {
  Graph graph;
  label_t v = graph.catalog().AddVertexLabel("V");
  label_t e = graph.catalog().AddEdgeLabel("E");
  vertex_id_t a = graph.AddVertex(v);
  vertex_id_t b = graph.AddVertex(v);
  edge_id_t ab = graph.AddEdge(a, b, e);
  EXPECT_EQ(graph.num_vertices(), 2u);
  EXPECT_EQ(graph.num_edges(), 1u);
  EXPECT_EQ(graph.edge_src(ab), a);
  EXPECT_EQ(graph.edge_dst(ab), b);
  EXPECT_EQ(graph.edge_endpoint(ab, Direction::kFwd), b);
  EXPECT_EQ(graph.edge_endpoint(ab, Direction::kBwd), a);
  EXPECT_DOUBLE_EQ(graph.average_degree(), 0.5);
}

TEST(GraphBuilderTest, InfersPropertyTypes) {
  Graph graph;
  GraphBuilder builder(&graph);
  vertex_id_t v = builder.AddVertex("Person");
  builder.SetVertexProp(v, "age", Value::Int64(30));
  builder.SetVertexProp(v, "name", Value::String("Ann"));
  prop_key_t age = graph.catalog().FindProperty("age", PropTargetKind::kVertex);
  EXPECT_EQ(graph.vertex_props().Get(age, v).AsInt64(), 30);
}

TEST(CsvIoTest, RoundTrip) {
  Graph graph;
  GraphBuilder builder(&graph);
  vertex_id_t a = builder.AddVertex("V");
  vertex_id_t b = builder.AddVertex("V");
  builder.AddEdge(a, b, "F");
  builder.AddEdge(b, a, "G");
  std::string path = testing::TempDir() + "/aplus_csv_test.csv";
  ASSERT_TRUE(SaveEdgeListCsv(graph, path));

  Graph loaded;
  CsvEdgeListOptions options;
  EXPECT_EQ(LoadEdgeListCsv(path, options, &loaded), 2);
  EXPECT_EQ(loaded.num_edges(), 2u);
  EXPECT_EQ(loaded.edge_src(0), 0u);
  EXPECT_EQ(loaded.edge_dst(0), 1u);
  EXPECT_EQ(loaded.catalog().EdgeLabelName(loaded.edge_label(1)), "G");
  std::remove(path.c_str());
}

TEST(CsvIoTest, SplitLine) {
  std::vector<std::string> fields = SplitCsvLine("a,b,,c", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[2], "");
}

}  // namespace
}  // namespace aplus
