// Tests of the sealed-segment tier: the delta/varint codec against its
// scalar reference semantics (adversarial lengths, max-delta gaps,
// truncation/corruption fail-closed), and seal -> mmap-reopen
// differentials — every query result over a segment-backed database
// must match the in-memory database it was sealed from, at 1 and 4
// threads, raw and force-packed, across the supported SIMD dispatch
// levels.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "core/database.h"
#include "datagen/financial_props.h"
#include "datagen/power_law_generator.h"
#include "query/intersect_kernels.h"
#include "storage/codec.h"
#include "storage/segment.h"
#include "storage/serialize.h"
#include "util/rng.h"

namespace aplus {
namespace {

std::string TempPath(const std::string& name) { return testing::TempDir() + "/" + name; }

// Environment knob guard: restores (unsets) on scope exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) { setenv(name, value, 1); }
  ~ScopedEnv() { unsetenv(name_); }

 private:
  const char* name_;
};

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(simd::Level level) : prev_(simd::ActiveLevel()) {
    simd::SetLevel(level);
  }
  ~ScopedSimdLevel() { simd::SetLevel(prev_); }

 private:
  simd::Level prev_;
};

std::vector<simd::Level> SupportedLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::HostMaxLevel() >= simd::Level::kSse) levels.push_back(simd::Level::kSse);
  if (simd::HostMaxLevel() >= simd::Level::kAvx2) levels.push_back(simd::Level::kAvx2);
  return levels;
}

// ---------------------------------------------------------------------
// Codec units
// ---------------------------------------------------------------------

// Lengths around every structural boundary: empty, single, around the
// 32-entry block size and around larger powers of two.
const uint32_t kAdversarialLens[] = {0,  1,  2,  3,   31,  32,  33,  63,  64,
                                     65, 95, 96, 127, 128, 129, 511, 512, 513, 1025};

struct Entries {
  std::vector<vertex_id_t> nbrs;
  std::vector<edge_id_t> eids;
};

Entries RandomEntries(uint32_t n, uint64_t seed) {
  Entries e;
  Rng rng(seed);
  for (uint32_t i = 0; i < n; ++i) {
    e.nbrs.push_back(static_cast<vertex_id_t>(rng.Next()));
    e.eids.push_back(rng.Next());
  }
  return e;
}

void ExpectRoundTrip(const Entries& e) {
  const uint32_t n = static_cast<uint32_t>(e.nbrs.size());
  std::vector<uint8_t> stream;
  size_t bytes = codec::PackAdjacency(e.nbrs.data(), e.eids.data(), n, &stream);
  ASSERT_EQ(bytes, stream.size());
  size_t validated_bytes = 0;
  ASSERT_TRUE(codec::ValidatePacked(stream.data(), stream.size(), &validated_bytes));
  EXPECT_EQ(validated_bytes, stream.size());
  EXPECT_EQ(codec::PackedNumEntries(stream.data()), n);

  // Whole-range decode, both sides and one-sided.
  std::vector<vertex_id_t> nbrs(n);
  std::vector<edge_id_t> eids(n);
  codec::DecodeRange(stream.data(), 0, n, nbrs.data(), eids.data());
  EXPECT_EQ(nbrs, e.nbrs);
  EXPECT_EQ(eids, e.eids);
  std::fill(nbrs.begin(), nbrs.end(), 0u);
  codec::DecodeRange(stream.data(), 0, n, nbrs.data(), nullptr);
  EXPECT_EQ(nbrs, e.nbrs);

  // Partial ranges crossing block boundaries, plus point access and the
  // cursor (which must agree entry-for-entry with the reference).
  codec::PackedCursor cursor;
  for (uint32_t begin = 0; begin < n; begin += 1 + n / 7) {
    uint32_t count = std::min(n - begin, 1 + begin % 67);
    std::vector<vertex_id_t> part_nbrs(count);
    std::vector<edge_id_t> part_eids(count);
    codec::DecodeRange(stream.data(), begin, count, part_nbrs.data(), part_eids.data());
    for (uint32_t i = 0; i < count; ++i) {
      EXPECT_EQ(part_nbrs[i], e.nbrs[begin + i]);
      EXPECT_EQ(part_eids[i], e.eids[begin + i]);
      EXPECT_EQ(codec::DecodeNbrAt(stream.data(), begin + i), e.nbrs[begin + i]);
      EXPECT_EQ(codec::DecodeEidAt(stream.data(), begin + i), e.eids[begin + i]);
      EXPECT_EQ(cursor.NbrAt(stream.data(), begin + i), e.nbrs[begin + i]);
      EXPECT_EQ(cursor.EidAt(stream.data(), begin + i), e.eids[begin + i]);
    }
  }
}

TEST(CodecTest, RoundTripAdversarialLengths) {
  for (uint32_t len : kAdversarialLens) {
    SCOPED_TRACE(len);
    ExpectRoundTrip(RandomEntries(len, 1000 + len));
  }
}

TEST(CodecTest, RoundTripMaxDeltaGaps) {
  // Alternating extremes produce the largest possible zigzag deltas in
  // both directions, for both the 32-bit neighbour and 64-bit edge side.
  Entries e;
  for (uint32_t i = 0; i < 200; ++i) {
    e.nbrs.push_back(i % 2 == 0 ? 0u : ~0u);
    e.eids.push_back(i % 3 == 0 ? 0ull : ~0ull);
  }
  ExpectRoundTrip(e);
}

TEST(CodecTest, RoundTripSortedRuns) {
  // The common case: bucket-sorted neighbour runs with small deltas.
  Entries e;
  Rng rng(7);
  vertex_id_t v = 0;
  for (uint32_t i = 0; i < 1000; ++i) {
    v += static_cast<vertex_id_t>(rng.NextBounded(5));
    e.nbrs.push_back(v);
    e.eids.push_back(i * 3);
  }
  ExpectRoundTrip(e);
}

TEST(CodecTest, ValidateRejectsEveryTruncation) {
  Entries e = RandomEntries(100, 99);
  std::vector<uint8_t> stream;
  codec::PackAdjacency(e.nbrs.data(), e.eids.data(), 100, &stream);
  for (size_t avail = 0; avail < stream.size(); ++avail) {
    EXPECT_FALSE(codec::ValidatePacked(stream.data(), avail)) << "avail=" << avail;
  }
  EXPECT_TRUE(codec::ValidatePacked(stream.data(), stream.size()));
}

TEST(CodecTest, ValidateSurvivesRandomCorruption) {
  Entries e = RandomEntries(256, 17);
  std::vector<uint8_t> stream;
  codec::PackAdjacency(e.nbrs.data(), e.eids.data(), 256, &stream);
  Rng rng(4242);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> corrupt = stream;
    size_t pos = rng.NextBounded(corrupt.size());
    corrupt[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    // Either rejected, or structurally sound — in which case a full
    // decode must stay in bounds (ASan-checked in the sanitizer lane).
    if (codec::ValidatePacked(corrupt.data(), corrupt.size())) {
      uint32_t n = codec::PackedNumEntries(corrupt.data());
      std::vector<vertex_id_t> nbrs(n);
      std::vector<edge_id_t> eids(n);
      if (n > 0) codec::DecodeRange(corrupt.data(), 0, n, nbrs.data(), eids.data());
    }
  }
}

// ---------------------------------------------------------------------
// Seal / reopen differential
// ---------------------------------------------------------------------

using Row = std::vector<Value>;

struct RowCollector : RowConsumer {
  std::mutex mu;
  std::vector<Row> rows;
  void OnBatch(const RowBatch& batch) override {
    std::lock_guard<std::mutex> lock(mu);
    for (uint32_t r = 0; r < batch.num_rows(); ++r) {
      Row row;
      for (size_t c = 0; c < batch.num_columns(); ++c) row.push_back(batch.Cell(c, r));
      rows.push_back(std::move(row));
    }
  }
};

bool RowLess(const Row& a, const Row& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    int c = Value::Compare(a[i], b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

// Runs `text`, returning (match count, sorted result rows).
std::pair<uint64_t, std::vector<Row>> RunQuery(Database* db, const std::string& text,
                                               int threads) {
  auto prepared = db->Prepare(text);
  EXPECT_TRUE(prepared->ok()) << text << ": " << prepared->error();
  RowCollector rows;
  QueryOutcome out = prepared->Execute(&rows, threads);
  EXPECT_TRUE(out.ok()) << text << ": " << out.error;
  std::sort(rows.rows.begin(), rows.rows.end(), RowLess);
  return {out.count, std::move(rows.rows)};
}

const char* kDiffQueries[] = {
    // Intersection-heavy: triangles force EXTEND/INTERSECT frontiers
    // over the (possibly packed) lists.
    "MATCH (a)-[r1:E]->(b)-[r2:E]->(c), (a)-[r3:E]->(c) RETURN COUNT(*)",
    // Two-hop enumeration with projected edge properties (MULTI-EXTEND
    // equal-run decodes read both nbrs and eids).
    "MATCH (a)-[r1:E]->(b)-[r2:E]->(c) RETURN COUNT(*), SUM(r1.amount), MIN(r2.date)",
    // Grouped aggregate over one hop, exercising property access by the
    // edge IDs decoded out of the lists.
    "MATCH (a)-[r:E]->(b) RETURN a.acc, COUNT(*), SUM(r.amount)",
    // Ordered projection (deterministic row set).
    "MATCH (a)-[r:E]->(b) RETURN a, b, r.amount ORDER BY r.amount DESC, a, b LIMIT 50",
};

Graph MakeGraph(uint64_t seed) {
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 3000;
  params.avg_degree = 7.0;
  params.seed = seed;
  GeneratePowerLawGraph(params, &graph);
  AddFinancialProperties(seed, &graph, 40);
  return graph;
}

void ExpectSealReopenDifferential(uint64_t seed, const char* compress_mode) {
  SCOPED_TRACE(std::string("seed=") + std::to_string(seed) + " compress=" + compress_mode);
  ScopedEnv compress("APLUS_SEGMENT_COMPRESS", compress_mode);

  Database db(MakeGraph(seed));
  db.BuildPrimaryIndexes();
  std::string path = TempPath("aplus_seg_" + std::to_string(seed) + "_" + compress_mode + ".seg");
  std::string error;
  ASSERT_TRUE(db.SealToSegment(path, &error)) << error;

  std::unique_ptr<Database> reopened = Database::OpenFromSegment(path, &error);
  ASSERT_NE(reopened, nullptr) << error;
  ASSERT_TRUE(reopened->segment_backed());
  EXPECT_EQ(reopened->graph().num_edges(), db.graph().num_edges());
  EXPECT_EQ(reopened->graph().num_vertices(), db.graph().num_vertices());

  for (const char* text : kDiffQueries) {
    for (int threads : {1, 4}) {
      SCOPED_TRACE(std::string(text) + " threads=" + std::to_string(threads));
      auto expected = RunQuery(&db, text, threads);
      auto actual = RunQuery(reopened.get(), text, threads);
      EXPECT_EQ(actual.first, expected.first);
      ASSERT_EQ(actual.second.size(), expected.second.size());
      for (size_t i = 0; i < expected.second.size(); ++i) {
        ASSERT_EQ(actual.second[i].size(), expected.second[i].size());
        for (size_t c = 0; c < expected.second[i].size(); ++c) {
          EXPECT_EQ(Value::Compare(actual.second[i][c], expected.second[i][c]), 0);
        }
      }
    }
  }
  std::remove(path.c_str());
}

TEST(SegmentTest, SealReopenDifferentialAuto) {
  for (uint64_t seed : {11u, 22u, 33u}) ExpectSealReopenDifferential(seed, "auto");
}

TEST(SegmentTest, SealReopenDifferentialForcedPacked) {
  // Every page packed, hubs included: the packed probe/gallop/cursor
  // paths carry the whole differential.
  for (uint64_t seed : {11u, 33u}) ExpectSealReopenDifferential(seed, "on");
}

TEST(SegmentTest, SealReopenDifferentialForcedRaw) {
  ExpectSealReopenDifferential(22, "off");
}

TEST(SegmentTest, DifferentialAtEverySimdLevel) {
  for (simd::Level level : SupportedLevels()) {
    SCOPED_TRACE(simd::ToString(level));
    ScopedSimdLevel scoped(level);
    ExpectSealReopenDifferential(44, "on");
  }
}

TEST(SegmentTest, CompressionRatioOnPowerLaw) {
  ScopedEnv compress("APLUS_SEGMENT_COMPRESS", "on");
  Database db(MakeGraph(5));
  db.BuildPrimaryIndexes();
  std::string path = TempPath("aplus_seg_ratio.seg");
  std::string error;
  ASSERT_TRUE(db.SealToSegment(path, &error)) << error;

  std::unique_ptr<Segment> seg = OpenSegment(path, &error);
  ASSERT_NE(seg, nullptr) << error;
  const SegmentStats& stats = seg->stats();
  EXPECT_EQ(stats.raw_pages, 0u);
  ASSERT_GT(stats.packed_adj_bytes, 0u);
  // Acceptance floor: delta/varint adjacency at least 1.5x smaller than
  // the flat nbr/eid arrays it replaces.
  EXPECT_GE(static_cast<double>(stats.packed_adj_unpacked_bytes),
            1.5 * static_cast<double>(stats.packed_adj_bytes));
  std::remove(path.c_str());
}

TEST(SegmentTest, RejectsDdlOnSegmentBackedDatabase) {
  Database db(MakeGraph(6));
  db.BuildPrimaryIndexes();
  std::string path = TempPath("aplus_seg_ddl.seg");
  std::string error;
  ASSERT_TRUE(db.SealToSegment(path, &error)) << error;
  std::unique_ptr<Database> reopened = Database::OpenFromSegment(path, &error);
  ASSERT_NE(reopened, nullptr) << error;

  DdlResult ddl = reopened->ExecuteDdl(
      "RECONFIGURE PRIMARY INDEXES PARTITION BY eadj.label SORT BY vnbr.ID");
  EXPECT_FALSE(ddl.ok);
  EXPECT_NE(ddl.message.find("segment"), std::string::npos);
  EXPECT_EQ(reopened->CreateVpIndex("vp", Predicate{}, IndexConfig::Default(), Direction::kFwd),
            nullptr);
  // Queries still run.
  auto counted = RunQuery(reopened.get(), kDiffQueries[0], 1);
  auto expected = RunQuery(&db, kDiffQueries[0], 1);
  EXPECT_EQ(counted.first, expected.first);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Fail-closed hardening: truncations and corruption, segment + snapshot
// ---------------------------------------------------------------------

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const uint8_t* data, size_t n) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data), static_cast<std::streamsize>(n));
}

TEST(SegmentTest, TruncatedSegmentFailsClosed) {
  Database db(MakeGraph(7));
  db.BuildPrimaryIndexes();
  std::string path = TempPath("aplus_seg_trunc.seg");
  std::string error;
  ASSERT_TRUE(db.SealToSegment(path, &error)) << error;
  std::vector<uint8_t> bytes = ReadFile(path);
  ASSERT_FALSE(bytes.empty());

  std::string trunc_path = TempPath("aplus_seg_trunc_cut.seg");
  for (size_t len : {size_t{0}, size_t{7}, size_t{63}, size_t{64}, bytes.size() / 4,
                     bytes.size() / 2, bytes.size() - 1}) {
    SCOPED_TRACE(len);
    WriteFile(trunc_path, bytes.data(), len);
    error.clear();
    EXPECT_EQ(OpenSegment(trunc_path, &error), nullptr);
    EXPECT_FALSE(error.empty());
  }
  std::remove(trunc_path.c_str());
  std::remove(path.c_str());
}

TEST(SegmentTest, CorruptedSegmentFailsClosedOrStaysSafe) {
  Database db(MakeGraph(8));
  db.BuildPrimaryIndexes();
  std::string path = TempPath("aplus_seg_fuzz.seg");
  std::string error;
  ASSERT_TRUE(db.SealToSegment(path, &error)) << error;
  std::vector<uint8_t> bytes = ReadFile(path);
  ASSERT_FALSE(bytes.empty());

  std::string fuzz_path = TempPath("aplus_seg_fuzz_hit.seg");
  Rng rng(777);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<uint8_t> corrupt = bytes;
    size_t pos = rng.NextBounded(corrupt.size());
    corrupt[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    WriteFile(fuzz_path, corrupt.data(), corrupt.size());
    // Must either reject with a typed error, or open a structurally
    // valid file whose queries run without faulting (e.g. the flip hit
    // alignment padding or a property payload). ASan/UBSan in the CI
    // segments lane turn any out-of-bounds decode into a failure.
    std::unique_ptr<Database> reopened = Database::OpenFromSegment(fuzz_path, &error);
    if (reopened != nullptr) {
      RunQuery(reopened.get(), kDiffQueries[0], 1);
    } else {
      EXPECT_FALSE(error.empty());
    }
  }
  std::remove(fuzz_path.c_str());
  std::remove(path.c_str());
}

TEST(SegmentTest, GarbageSegmentFailsClosed) {
  std::string path = TempPath("aplus_seg_garbage.seg");
  std::vector<uint8_t> junk(4096);
  Rng rng(99);
  for (auto& b : junk) b = static_cast<uint8_t>(rng.Next());
  WriteFile(path, junk.data(), junk.size());
  std::string error;
  EXPECT_EQ(OpenSegment(path, &error), nullptr);
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

TEST(SerializeHardeningTest, TruncatedSnapshotFailsClosed) {
  Graph graph = MakeGraph(9);
  std::string path = TempPath("aplus_snap_trunc.bin");
  ASSERT_TRUE(SaveGraph(graph, path));
  std::vector<uint8_t> bytes = ReadFile(path);
  ASSERT_FALSE(bytes.empty());

  std::string trunc_path = TempPath("aplus_snap_trunc_cut.bin");
  Rng rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    size_t len = rng.NextBounded(bytes.size());
    WriteFile(trunc_path, bytes.data(), len);
    Graph loaded;
    EXPECT_FALSE(LoadGraph(trunc_path, &loaded)) << "len=" << len;
  }
  std::remove(trunc_path.c_str());
  std::remove(path.c_str());
}

TEST(SerializeHardeningTest, CorruptedSnapshotFailsClosedOrStaysSafe) {
  Graph graph = MakeGraph(10);
  std::string path = TempPath("aplus_snap_fuzz.bin");
  ASSERT_TRUE(SaveGraph(graph, path));
  std::vector<uint8_t> bytes = ReadFile(path);

  std::string fuzz_path = TempPath("aplus_snap_fuzz_hit.bin");
  Rng rng(53);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<uint8_t> corrupt = bytes;
    size_t pos = rng.NextBounded(corrupt.size());
    corrupt[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    WriteFile(fuzz_path, corrupt.data(), corrupt.size());
    Graph loaded;
    // A flip may land in a property payload and load "successfully" with
    // different values; what must never happen is a crash or an
    // out-of-range label/category/type reaching the graph (validated by
    // the loader, and by ASan in the sanitizer lanes).
    if (LoadGraph(fuzz_path, &loaded)) {
      EXPECT_LE(loaded.num_vertices(), graph.num_vertices() + 1);
    }
  }
  std::remove(fuzz_path.c_str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aplus
