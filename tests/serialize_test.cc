#include <gtest/gtest.h>

#include <cstdio>

#include "datagen/example_graph.h"
#include "datagen/financial_props.h"
#include "datagen/power_law_generator.h"
#include "index/index_store.h"
#include "storage/serialize.h"

namespace aplus {
namespace {

std::string TempPath(const std::string& name) { return testing::TempDir() + "/" + name; }

TEST(SerializeTest, RoundTripExampleGraph) {
  ExampleGraph ex = BuildExampleGraph();
  ex.graph.catalog().RegisterCategoryValue(ex.currency_key, "USD");
  std::string path = TempPath("aplus_example.bin");
  ASSERT_TRUE(SaveGraph(ex.graph, path));

  Graph loaded;
  ASSERT_TRUE(LoadGraph(path, &loaded));
  EXPECT_EQ(loaded.num_vertices(), ex.graph.num_vertices());
  EXPECT_EQ(loaded.num_edges(), ex.graph.num_edges());
  // Catalog round-trips by name and id.
  EXPECT_EQ(loaded.catalog().FindVertexLabel("Account"), ex.account_label);
  EXPECT_EQ(loaded.catalog().FindEdgeLabel("W"), ex.wire_label);
  EXPECT_EQ(loaded.catalog().FindCategoryValue(ex.currency_key, "USD"), 0u);
  // Topology and properties match.
  for (edge_id_t e = 0; e < loaded.num_edges(); ++e) {
    EXPECT_EQ(loaded.edge_src(e), ex.graph.edge_src(e));
    EXPECT_EQ(loaded.edge_dst(e), ex.graph.edge_dst(e));
    EXPECT_EQ(loaded.edge_label(e), ex.graph.edge_label(e));
    EXPECT_EQ(Value::Compare(loaded.edge_props().Get(ex.amount_key, e),
                             ex.graph.edge_props().Get(ex.amount_key, e)),
              0);
  }
  for (vertex_id_t v = 0; v < loaded.num_vertices(); ++v) {
    EXPECT_EQ(loaded.vertex_label(v), ex.graph.vertex_label(v));
    EXPECT_EQ(Value::Compare(loaded.vertex_props().Get(ex.name_key, v),
                             ex.graph.vertex_props().Get(ex.name_key, v)),
              0);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, RoundTripGeneratedGraphAndIndexes) {
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 2000;
  params.avg_degree = 6.0;
  GeneratePowerLawGraph(params, &graph);
  AddFinancialProperties(9, &graph, 30);
  std::string path = TempPath("aplus_generated.bin");
  ASSERT_TRUE(SaveGraph(graph, path));

  Graph loaded;
  ASSERT_TRUE(LoadGraph(path, &loaded));
  ASSERT_EQ(loaded.num_edges(), graph.num_edges());

  // Indexes rebuilt over the loaded graph behave identically.
  IndexStore original(&graph);
  IndexStore restored(&loaded);
  original.BuildPrimary(IndexConfig::Default());
  restored.BuildPrimary(IndexConfig::Default());
  EXPECT_EQ(original.PrimaryMemoryBytes(), restored.PrimaryMemoryBytes());
  for (vertex_id_t v = 0; v < loaded.num_vertices(); v += 37) {
    AdjListSlice a = original.primary(Direction::kFwd)->GetFullList(v);
    AdjListSlice b = restored.primary(Direction::kFwd)->GetFullList(v);
    ASSERT_EQ(a.size(), b.size()) << "v=" << v;
    for (uint32_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.NbrAt(i), b.NbrAt(i));
      EXPECT_EQ(a.EdgeAt(i), b.EdgeAt(i));
    }
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsGarbage) {
  std::string path = TempPath("aplus_garbage.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "not a snapshot at all";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  Graph graph;
  EXPECT_FALSE(LoadGraph(path, &graph));
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  Graph graph;
  EXPECT_FALSE(LoadGraph(TempPath("does_not_exist.bin"), &graph));
}

}  // namespace
}  // namespace aplus
