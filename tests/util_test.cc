#include <gtest/gtest.h>

#include <vector>

#include "util/bit_util.h"
#include "util/memory_tracker.h"
#include "util/rng.h"
#include "util/timer.h"

namespace aplus {
namespace {

TEST(BitUtilTest, BytesForValueBoundaries) {
  EXPECT_EQ(BytesForValue(0), 1);
  EXPECT_EQ(BytesForValue(255), 1);
  EXPECT_EQ(BytesForValue(256), 2);
  EXPECT_EQ(BytesForValue(65535), 2);
  EXPECT_EQ(BytesForValue(65536), 3);
  EXPECT_EQ(BytesForValue((1ULL << 24) - 1), 3);
  EXPECT_EQ(BytesForValue(1ULL << 24), 4);
  EXPECT_EQ(BytesForValue(0xffffffffULL), 4);
  EXPECT_EQ(BytesForValue(0x1ffffffffULL), 5);
  EXPECT_EQ(BytesForValue(~0ULL), 8);
}

TEST(BitUtilTest, FixedWidthRoundTrip) {
  uint8_t buf[8];
  for (uint8_t width = 1; width <= 8; ++width) {
    uint64_t max = width == 8 ? ~0ULL : (1ULL << (8 * width)) - 1;
    for (uint64_t value : {uint64_t{0}, uint64_t{1}, max / 2, max}) {
      StoreFixedWidth(buf, width, value);
      EXPECT_EQ(LoadFixedWidth(buf, width), value) << "width=" << int(width);
    }
  }
}

TEST(BitUtilTest, RoundUp) {
  EXPECT_EQ(RoundUp(0, 64), 0u);
  EXPECT_EQ(RoundUp(1, 64), 64u);
  EXPECT_EQ(RoundUp(64, 64), 64u);
  EXPECT_EQ(RoundUp(65, 64), 128u);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, RoughlyUniform) {
  Rng rng(99);
  std::vector<int> buckets(10, 0);
  for (int i = 0; i < 100000; ++i) buckets[rng.NextBounded(10)]++;
  for (int count : buckets) {
    EXPECT_GT(count, 8000);
    EXPECT_LT(count, 12000);
  }
}

TEST(MemoryTrackerTest, Accounting) {
  MemoryTracker tracker;
  int a = tracker.RegisterCategory("primary");
  int b = tracker.RegisterCategory("secondary");
  EXPECT_EQ(tracker.RegisterCategory("primary"), a);  // idempotent
  tracker.Set(a, 1000);
  tracker.Add(b, 500);
  tracker.Add(b, -100);
  EXPECT_EQ(tracker.Get(a), 1000u);
  EXPECT_EQ(tracker.Get(b), 400u);
  EXPECT_EQ(tracker.Total(), 1400u);
  EXPECT_NE(tracker.Report().find("primary"), std::string::npos);
}

TEST(TimerTest, MeasuresSomething) {
  WallTimer timer;
  volatile uint64_t x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedNanos(), 0);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace aplus
