#include <gtest/gtest.h>

#include <set>

#include "datagen/example_graph.h"
#include "datagen/power_law_generator.h"
#include "index/bitmap_index.h"
#include "index/vp_index.h"

namespace aplus {
namespace {

class BitmapIndexTest : public ::testing::Test {
 protected:
  BitmapIndexTest() : ex_(BuildExampleGraph()), fwd_(&ex_.graph, Direction::kFwd) {
    fwd_.Build(IndexConfig::Default());
  }

  OneHopViewDef AmountView(int64_t threshold) const {
    OneHopViewDef view;
    view.name = "large";
    view.pred.AddConst(PropRef{PropSite::kAdjEdge, ex_.amount_key, false, false}, CmpOp::kGt,
                       Value::Int64(threshold));
    return view;
  }

  ExampleGraph ex_;
  PrimaryIndex fwd_;
};

TEST_F(BitmapIndexTest, MarksExactlyTheViewEdges) {
  BitmapIndex bitmap(&ex_.graph, &fwd_, AmountView(50));
  bitmap.Build();
  const PropertyColumn* amount = ex_.graph.edge_props().column(ex_.amount_key);
  for (vertex_id_t v = 0; v < ex_.graph.num_vertices(); ++v) {
    AdjListSlice primary = fwd_.GetFullList(v);
    BitmapIndex::BitmapSlice bits = bitmap.GetBits(v, {});
    ASSERT_EQ(bits.len, primary.len);
    for (uint32_t i = 0; i < primary.size(); ++i) {
      edge_id_t e = primary.EdgeAt(i);
      bool expected = !amount->IsNull(e) && amount->GetInt64(e) > 50;
      EXPECT_EQ(bits.TestAt(i), expected) << "v=" << v << " i=" << i;
    }
  }
}

TEST_F(BitmapIndexTest, AgreesWithVpIndexContents) {
  BitmapIndex bitmap(&ex_.graph, &fwd_, AmountView(50));
  bitmap.Build();
  VpIndex vp(&ex_.graph, &fwd_, AmountView(50), IndexConfig::Default());
  vp.Build();
  EXPECT_EQ(bitmap.num_edges_indexed(), vp.num_edges_indexed());
  for (vertex_id_t v = 0; v < ex_.graph.num_vertices(); ++v) {
    std::set<edge_id_t> via_bits;
    AdjListSlice primary = fwd_.GetFullList(v);
    BitmapIndex::BitmapSlice bits = bitmap.GetBits(v, {});
    for (uint32_t i = 0; i < primary.size(); ++i) {
      if (bits.TestAt(i)) via_bits.insert(primary.EdgeAt(i));
    }
    std::set<edge_id_t> via_vp;
    AdjListSlice vp_slice = vp.GetFullList(v);
    for (uint32_t i = 0; i < vp_slice.size(); ++i) via_vp.insert(vp_slice.EdgeAt(i));
    EXPECT_EQ(via_bits, via_vp) << "v=" << v;
  }
}

TEST_F(BitmapIndexTest, SublistAlignedBits) {
  BitmapIndex bitmap(&ex_.graph, &fwd_, AmountView(50));
  bitmap.Build();
  // The Wire slice of v1 aligns with its bits.
  AdjListSlice wires = fwd_.GetList(ex_.accounts[0], {ex_.wire_label});
  BitmapIndex::BitmapSlice bits = bitmap.GetBits(ex_.accounts[0], {ex_.wire_label});
  ASSERT_EQ(bits.len, wires.len);
  const PropertyColumn* amount = ex_.graph.edge_props().column(ex_.amount_key);
  for (uint32_t i = 0; i < wires.size(); ++i) {
    EXPECT_EQ(bits.TestAt(i), amount->GetInt64(wires.EdgeAt(i)) > 50);
  }
}

TEST(BitmapIndexSpaceTest, ConstantBitsPerPrimaryEdge) {
  // Section III-B3: bitmap memory tracks primary size regardless of the
  // view's selectivity, unlike offset lists.
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 20000;
  params.avg_degree = 12.0;
  GeneratePowerLawGraph(params, &graph);
  prop_key_t amt = graph.AddEdgeProperty("amt", ValueType::kInt64);
  PropertyColumn* col = graph.edge_props().mutable_column(amt);
  for (edge_id_t e = 0; e < graph.num_edges(); ++e) col->SetInt64(e, static_cast<int64_t>(e % 1000));
  PrimaryIndex primary(&graph, Direction::kFwd);
  primary.Build(IndexConfig::Default());

  auto view_with_sel = [&](int64_t threshold) {
    OneHopViewDef view;
    view.name = "v";
    view.pred.AddConst(PropRef{PropSite::kAdjEdge, amt, false, false}, CmpOp::kLt,
                       Value::Int64(threshold));
    return view;
  };

  BitmapIndex selective(&graph, &primary, view_with_sel(10));    // ~1%
  BitmapIndex broad(&graph, &primary, view_with_sel(900));       // ~90%
  selective.Build();
  broad.Build();
  EXPECT_EQ(selective.MemoryBytes(), broad.MemoryBytes());
  EXPECT_LT(selective.num_edges_indexed(), broad.num_edges_indexed() / 10);

  // Offset lists shrink with selectivity; bitmaps do not.
  VpIndex vp_selective(&graph, &primary, view_with_sel(10), IndexConfig::Default());
  VpIndex vp_broad(&graph, &primary, view_with_sel(900), IndexConfig::Default());
  vp_selective.Build();
  vp_broad.Build();
  EXPECT_LT(vp_selective.MemoryBytes(), vp_broad.MemoryBytes());
}

}  // namespace
}  // namespace aplus
