// Differential tests for morsel-driven parallel plan execution:
// Execute(k) for k in {2, 4, 8} must return exactly the serial match
// count for scan / extend / extend-intersect / multi-extend / filter
// plans over random power-law multi-edge graphs (the same generator
// setup as intersect_diff_test.cc), including on repeated executions of
// the same plan (worker pipelines and MatchStates are reused).

#include <gtest/gtest.h>

#include <atomic>

#include "datagen/label_assigner.h"
#include "datagen/power_law_generator.h"
#include "index/index_store.h"
#include "query/executor.h"
#include "query/intersect_kernels.h"
#include "query/plan.h"
#include "util/rng.h"

namespace aplus {
namespace {

class ParallelDiffTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  ParallelDiffTest() {
    PowerLawParams params;
    params.num_vertices = 900;
    params.avg_degree = 6.0;
    params.preferential_fraction = 0.8;  // hubs attract parallel edges
    params.seed = GetParam();
    GeneratePowerLawGraph(params, &graph_);
    AssignRandomLabels(2, 2, GetParam() + 100, &graph_);
    grp_key_ = graph_.AddVertexProperty("grp", ValueType::kInt64);
    PropertyColumn* col = graph_.vertex_props().mutable_column(grp_key_);
    Rng rng(GetParam() + 7);
    for (vertex_id_t v = 0; v < graph_.num_vertices(); ++v) {
      col->SetInt64(v, static_cast<int64_t>(rng.NextBounded(5)));
    }
    el0_ = graph_.catalog().FindEdgeLabel("EL0");
    el1_ = graph_.catalog().FindEdgeLabel("EL1");
    store_ = std::make_unique<IndexStore>(&graph_);
    store_->BuildPrimary(IndexConfig::Default());
    IndexConfig grp_config = IndexConfig::Default();
    grp_config.sorts.clear();
    grp_config.sorts.push_back({SortSource::kNbrProp, grp_key_});
    OneHopViewDef all_grp;
    all_grp.name = "all_grp";
    vp_grp_ = store_->CreateVpIndex(all_grp, grp_config, Direction::kFwd);
  }

  ListDescriptor FwdList(int bound_var, label_t elabel, int target_v, int target_e) {
    ListDescriptor desc;
    desc.source = ListDescriptor::Source::kPrimary;
    desc.primary = store_->primary(Direction::kFwd);
    desc.bound_var = bound_var;
    desc.cats = {elabel};
    desc.target_vertex_var = target_v;
    desc.target_edge_var = target_e;
    desc.nbr_sorted = true;
    return desc;
  }

  // Serial count once, then every parallel width twice (the second
  // execution proves the reused worker pipelines stay correct).
  void ExpectParallelMatchesSerial(Plan* plan, const char* what) {
    uint64_t serial = plan->Execute(1);
    for (int k : {2, 4, 8}) {
      EXPECT_EQ(plan->Execute(k), serial) << what << " k=" << k;
      EXPECT_EQ(plan->Execute(k), serial) << what << " k=" << k << " (re-executed)";
    }
    // Serial after parallel: the morsel cursor must not leak into the
    // serial path.
    EXPECT_EQ(plan->Execute(1), serial) << what << " serial re-check";
    EXPECT_GT(serial, 0u) << what << ": differential never matched anything";
  }

  Graph graph_;
  label_t el0_ = kInvalidLabel;
  label_t el1_ = kInvalidLabel;
  prop_key_t grp_key_ = kInvalidPropKey;
  std::unique_ptr<IndexStore> store_;
  VpIndex* vp_grp_ = nullptr;
};

// Scan -> Extend -> Extend/Intersect (unbound triangle).
TEST_P(ParallelDiffTest, TrianglePlan) {
  QueryGraph query;
  int a = query.AddVertex("a");
  int b = query.AddVertex("b");
  int c = query.AddVertex("c");
  query.AddEdge(a, b, el0_, "e0");
  query.AddEdge(a, c, el0_, "e1");
  query.AddEdge(b, c, el1_, "e2");
  PlanBuilder builder(&graph_, &query);
  std::vector<ListDescriptor> lists = {FwdList(a, el0_, c, 1), FwdList(b, el1_, c, 2)};
  auto plan = builder.Scan(a).Extend(FwdList(a, el0_, b, 0)).ExtendIntersect(lists, c).Build();
  ExpectParallelMatchesSerial(plan.get(), "triangle");
}

// Scan with predicates -> Extend -> Filter.
TEST_P(ParallelDiffTest, ScanPredicateAndFilterPlan) {
  QueryGraph query;
  int a = query.AddVertex("a");
  int b = query.AddVertex("b");
  query.AddEdge(a, b, el0_, "e0");
  QueryComparison scan_pred;
  scan_pred.lhs = QueryPropRef{a, false, kInvalidPropKey, /*is_id=*/true};
  scan_pred.op = CmpOp::kLt;
  scan_pred.rhs_const = Value::Int64(static_cast<int64_t>(graph_.num_vertices() / 2));
  QueryComparison filter_pred;
  filter_pred.lhs = QueryPropRef{b, false, grp_key_, false};
  filter_pred.op = CmpOp::kLe;
  filter_pred.rhs_const = Value::Int64(2);
  query.AddPredicate(scan_pred);
  query.AddPredicate(filter_pred);
  PlanBuilder builder(&graph_, &query);
  auto plan =
      builder.Scan(a, {scan_pred}).Extend(FwdList(a, el0_, b, 0)).Filter({filter_pred}).Build();
  ExpectParallelMatchesSerial(plan.get(), "scan-pred+filter");
}

// Scan -> Extend -> closing Extend (2-cycle membership probe).
TEST_P(ParallelDiffTest, ClosingExtendPlan) {
  QueryGraph query;
  int a = query.AddVertex("a");
  int b = query.AddVertex("b");
  query.AddEdge(a, b, el0_, "e0");
  query.AddEdge(b, a, el1_, "e1");
  PlanBuilder builder(&graph_, &query);
  auto plan = builder.Scan(a)
                  .Extend(FwdList(a, el0_, b, 0))
                  .Extend(FwdList(b, el1_, a, 1), {}, /*closing=*/true)
                  .Build();
  ExpectParallelMatchesSerial(plan.get(), "closing-extend");
}

// Scan -> Multi-Extend over property-sorted offset lists.
TEST_P(ParallelDiffTest, MultiExtendPlan) {
  QueryGraph query;
  int a = query.AddVertex("a");
  int b = query.AddVertex("b");
  int d = query.AddVertex("d");
  query.AddEdge(a, b, el0_, "e0");
  query.AddEdge(a, d, el1_, "e1");
  ListDescriptor l1;
  l1.source = ListDescriptor::Source::kVp;
  l1.vp = vp_grp_;
  l1.bound_var = a;
  l1.cats = {el0_};
  l1.target_vertex_var = b;
  l1.target_edge_var = 0;
  ListDescriptor l2 = l1;
  l2.cats = {el1_};
  l2.target_vertex_var = d;
  l2.target_edge_var = 1;
  PlanBuilder builder(&graph_, &query);
  auto plan = builder.Scan(a).MultiExtend({l1, l2}).Build();
  ExpectParallelMatchesSerial(plan.get(), "multi-extend");
}

// A bound leading scan (single-vertex domain): only one worker gets a
// morsel, the rest must drain empty and still merge correctly.
TEST_P(ParallelDiffTest, BoundScanPlan) {
  QueryGraph query;
  int a = query.AddVertex("a", kInvalidLabel, /*bound=*/static_cast<vertex_id_t>(GetParam()));
  int b = query.AddVertex("b");
  int c = query.AddVertex("c");
  query.AddEdge(a, b, el0_, "e0");
  query.AddEdge(b, c, el1_, "e1");
  PlanBuilder builder(&graph_, &query);
  auto plan =
      builder.Scan(a).Extend(FwdList(a, el0_, b, 0)).Extend(FwdList(b, el1_, c, 1)).Build();
  uint64_t serial = plan->Execute(1);
  for (int k : {2, 4, 8}) {
    EXPECT_EQ(plan->Execute(k), serial) << "bound-scan k=" << k;
  }
}

// Per-worker SinkOp callback copies: a callback counting into a
// thread-safe (atomic) shared counter must observe every match exactly
// once regardless of the worker count.
TEST_P(ParallelDiffTest, CallbackInvokedOncePerMatch) {
  QueryGraph query;
  int a = query.AddVertex("a");
  int b = query.AddVertex("b");
  query.AddEdge(a, b, el0_, "e0");
  std::atomic<uint64_t> seen{0};
  PlanBuilder builder(&graph_, &query);
  auto plan = builder.Scan(a)
                  .Extend(FwdList(a, el0_, b, 0))
                  .Build([&seen](const MatchState&) {
                    seen.fetch_add(1, std::memory_order_relaxed);
                  });
  uint64_t serial = plan->Execute(1);
  EXPECT_EQ(seen.load(), serial);
  for (int k : {2, 4, 8}) {
    seen.store(0);
    EXPECT_EQ(plan->Execute(k), serial) << "callback k=" << k;
    EXPECT_EQ(seen.load(), serial) << "callback k=" << k;
  }
}

// A callback that itself executes a parallel sub-plan (the nested
// ParallelRun case): must not deadlock, and both levels must count
// exactly. Each invocation builds its own sub-plan — Plans are not
// externally thread-safe, the outer workers invoke the callback
// concurrently, and holding a shared lock across a nested Execute would
// invert lock order against the pool's job mutex.
TEST_P(ParallelDiffTest, NestedParallelExecuteInCallback) {
  QueryGraph outer_query;
  int a = outer_query.AddVertex("a");
  int b = outer_query.AddVertex("b");
  outer_query.AddEdge(a, b, el0_, "e0");

  QueryGraph inner_query;
  int x = inner_query.AddVertex("x");
  int y = inner_query.AddVertex("y");
  inner_query.AddEdge(x, y, el1_, "e0");
  auto build_inner = [&] {
    PlanBuilder builder(&graph_, &inner_query);
    return builder.Scan(x).Extend(FwdList(x, el1_, y, 0)).Build();
  };
  uint64_t inner_expected = build_inner()->Execute(1);

  std::atomic<uint64_t> nested_failures{0};
  std::atomic<uint64_t> outer_seen{0};
  PlanBuilder outer_builder(&graph_, &outer_query);
  auto outer_plan =
      outer_builder.Scan(a).Extend(FwdList(a, el0_, b, 0)).Build([&](const MatchState&) {
        if (outer_seen.fetch_add(1, std::memory_order_relaxed) % 512 != 0) return;
        if (build_inner()->Execute(2) != inner_expected) {
          nested_failures.fetch_add(1, std::memory_order_relaxed);
        }
      });

  uint64_t outer_expected = outer_plan->Execute(1);
  outer_seen.store(0);
  EXPECT_EQ(outer_plan->Execute(4), outer_expected);
  EXPECT_EQ(outer_seen.load(), outer_expected);
  EXPECT_EQ(nested_failures.load(), 0u);
  EXPECT_GT(outer_expected, 0u);
}

// --- Deep morselization (tiny scan domains split one stage down) ---
//
// A single-vertex scan domain triggers the deep path in Execute(k):
// every replica runs the full scan and the first EXTEND's entry domain
// is claimed block-wise through the shared entry cursor. The tests pit
// it against serial execution, under repeated runs, mode flips, every
// worker width, and every SIMD dispatch level.

// Deep split feeding a plain EXTEND chain: hub sources maximize the
// first extend's entry domain so several blocks are actually contended.
TEST_P(ParallelDiffTest, DeepMorselTwoHopMatchesSerial) {
  // Pick the highest-out-degree vertex: the deepest entry domain.
  const PrimaryIndex* primary = store_->primary(Direction::kFwd);
  vertex_id_t hub = 0;
  uint32_t best = 0;
  for (vertex_id_t v = 0; v < graph_.num_vertices(); ++v) {
    uint32_t len = primary->GetFullList(v).len;
    if (len > best) {
      best = len;
      hub = v;
    }
  }
  ASSERT_GT(best, 0u);
  QueryGraph query;
  int a = query.AddVertex("a", kInvalidLabel, hub);
  int b = query.AddVertex("b");
  int c = query.AddVertex("c");
  query.AddEdge(a, b, el0_, "e0");
  query.AddEdge(b, c, el1_, "e1");
  PlanBuilder builder(&graph_, &query);
  auto plan =
      builder.Scan(a).Extend(FwdList(a, el0_, b, 0)).Extend(FwdList(b, el1_, c, 1)).Build();
  ExpectParallelMatchesSerial(plan.get(), "deep two-hop");
}

// Deep split feeding EXTEND/INTERSECT: the pinned triangle.
TEST_P(ParallelDiffTest, DeepMorselTriangleMatchesSerial) {
  for (uint64_t salt = 0; salt < 8; ++salt) {
    vertex_id_t src = static_cast<vertex_id_t>((GetParam() * 131 + salt * 37) %
                                               graph_.num_vertices());
    QueryGraph query;
    int a = query.AddVertex("a", kInvalidLabel, src);
    int b = query.AddVertex("b");
    int c = query.AddVertex("c");
    query.AddEdge(a, b, el0_, "e0");
    query.AddEdge(a, c, el0_, "e1");
    query.AddEdge(b, c, el1_, "e2");
    PlanBuilder builder(&graph_, &query);
    std::vector<ListDescriptor> lists = {FwdList(a, el0_, c, 1), FwdList(b, el1_, c, 2)};
    auto plan =
        builder.Scan(a).Extend(FwdList(a, el0_, b, 0)).ExtendIntersect(lists, c).Build();
    uint64_t serial = plan->Execute(1);
    for (int k : {2, 4, 8}) {
      EXPECT_EQ(plan->Execute(k), serial) << "deep triangle src=" << src << " k=" << k;
    }
  }
}

// The mode must flip cleanly between executions of one plan: serial,
// deep-parallel, and back, repeatedly — replicas persist across calls
// with their previous cursor wiring.
TEST_P(ParallelDiffTest, DeepMorselModeFlipsAcrossExecutions) {
  QueryGraph query;
  int a = query.AddVertex("a", kInvalidLabel,
                          static_cast<vertex_id_t>(GetParam() % graph_.num_vertices()));
  int b = query.AddVertex("b");
  int c = query.AddVertex("c");
  query.AddEdge(a, b, el0_, "e0");
  query.AddEdge(b, c, el1_, "e1");
  PlanBuilder builder(&graph_, &query);
  auto plan =
      builder.Scan(a).Extend(FwdList(a, el0_, b, 0)).Extend(FwdList(b, el1_, c, 1)).Build();
  uint64_t serial = plan->Execute(1);
  for (int round = 0; round < 3; ++round) {
    for (int k : {8, 1, 2, 4, 1}) {
      EXPECT_EQ(plan->Execute(k), serial) << "round=" << round << " k=" << k;
    }
  }
}

// A closing EXTEND below the scan cannot deep-morselize (its probes are
// membership checks, not enumerations): the plan must fall back to scan
// morsels and stay exact even though only one worker gets the morsel.
TEST_P(ParallelDiffTest, ClosingExtendNeverDeepMorselizes) {
  QueryGraph query;
  int a = query.AddVertex("a", kInvalidLabel,
                          static_cast<vertex_id_t>(GetParam() % graph_.num_vertices()));
  int b = query.AddVertex("b");
  query.AddEdge(a, b, el0_, "e0");
  query.AddEdge(b, a, el1_, "e1");
  PlanBuilder builder(&graph_, &query);
  auto plan = builder.Scan(a)
                  .Extend(FwdList(a, el0_, b, 0))
                  .Extend(FwdList(b, el1_, a, 1), {}, /*closing=*/true)
                  .Build();
  uint64_t serial = plan->Execute(1);
  for (int k : {2, 4, 8}) {
    EXPECT_EQ(plan->Execute(k), serial) << "closing deep k=" << k;
  }
}

// Deep-parallel callbacks still fire exactly once per match.
TEST_P(ParallelDiffTest, DeepMorselCallbackInvokedOncePerMatch) {
  QueryGraph query;
  int a = query.AddVertex("a", kInvalidLabel,
                          static_cast<vertex_id_t>((GetParam() * 7) % graph_.num_vertices()));
  int b = query.AddVertex("b");
  int c = query.AddVertex("c");
  query.AddEdge(a, b, el0_, "e0");
  query.AddEdge(b, c, el1_, "e1");
  std::atomic<uint64_t> seen{0};
  PlanBuilder builder(&graph_, &query);
  auto plan = builder.Scan(a)
                  .Extend(FwdList(a, el0_, b, 0))
                  .Extend(FwdList(b, el1_, c, 1))
                  .Build([&seen](const MatchState&) {
                    seen.fetch_add(1, std::memory_order_relaxed);
                  });
  uint64_t serial = plan->Execute(1);
  EXPECT_EQ(seen.load(), serial);
  for (int k : {2, 4, 8}) {
    seen.store(0);
    EXPECT_EQ(plan->Execute(k), serial) << "deep callback k=" << k;
    EXPECT_EQ(seen.load(), serial) << "deep callback k=" << k;
  }
}

// The parallel differential repeated at every supported SIMD dispatch
// level: kernel selection and morsel scheduling must compose.
TEST_P(ParallelDiffTest, AllKernelLevelsMatchSerial) {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::HostMaxLevel() >= simd::Level::kSse) levels.push_back(simd::Level::kSse);
  if (simd::HostMaxLevel() >= simd::Level::kAvx2) levels.push_back(simd::Level::kAvx2);
  QueryGraph query;
  int a = query.AddVertex("a");
  int b = query.AddVertex("b");
  int c = query.AddVertex("c");
  query.AddEdge(a, b, el0_, "e0");
  query.AddEdge(a, c, el0_, "e1");
  query.AddEdge(b, c, el1_, "e2");
  PlanBuilder builder(&graph_, &query);
  std::vector<ListDescriptor> lists = {FwdList(a, el0_, c, 1), FwdList(b, el1_, c, 2)};
  auto plan =
      builder.Scan(a).Extend(FwdList(a, el0_, b, 0)).ExtendIntersect(lists, c).Build();
  simd::Level prev = simd::ActiveLevel();
  uint64_t expected = 0;
  for (size_t i = 0; i < levels.size(); ++i) {
    simd::SetLevel(levels[i]);
    uint64_t serial = plan->Execute(1);
    if (i == 0) {
      expected = serial;
    } else {
      EXPECT_EQ(serial, expected) << "level=" << ToString(levels[i]);
    }
    for (int k : {2, 4, 8}) {
      EXPECT_EQ(plan->Execute(k), expected)
          << "level=" << ToString(levels[i]) << " k=" << k;
    }
  }
  simd::SetLevel(prev);
  EXPECT_GT(expected, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDiffTest, ::testing::Values(11u, 29u, 47u));

}  // namespace
}  // namespace aplus
