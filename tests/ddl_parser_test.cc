// Parses the exact DDL commands that appear in Section III of the paper.

#include <gtest/gtest.h>

#include "datagen/example_graph.h"
#include "view/ddl_parser.h"

namespace aplus {
namespace {

class DdlParserTest : public ::testing::Test {
 protected:
  DdlParserTest() : ex_(BuildExampleGraph()) {
    // Name the currency categories so identifier constants resolve.
    Catalog& catalog = ex_.graph.catalog();
    catalog.RegisterCategoryValue(ex_.currency_key, "USD");
    catalog.RegisterCategoryValue(ex_.currency_key, "EUR");
    catalog.RegisterCategoryValue(ex_.currency_key, "GBP");
  }
  ExampleGraph ex_;
};

TEST_F(DdlParserTest, ReconfigureFromSectionIII) {
  DdlCommand cmd = ParseDdl(
      "RECONFIGURE PRIMARY INDEXES "
      "PARTITION BY eadj.label, eadj.currency "
      "SORT BY vnbr.city",
      ex_.graph.catalog());
  ASSERT_TRUE(cmd.ok()) << cmd.error;
  EXPECT_EQ(cmd.kind, DdlCommand::Kind::kReconfigure);
  ASSERT_EQ(cmd.config.partitions.size(), 2u);
  EXPECT_EQ(cmd.config.partitions[0].source, PartitionSource::kEdgeLabel);
  EXPECT_EQ(cmd.config.partitions[1].source, PartitionSource::kEdgeProp);
  EXPECT_EQ(cmd.config.partitions[1].key, ex_.currency_key);
  ASSERT_EQ(cmd.config.sorts.size(), 1u);
  EXPECT_EQ(cmd.config.sorts[0].source, SortSource::kNbrProp);
  EXPECT_EQ(cmd.config.sorts[0].key, ex_.city_key);
}

TEST_F(DdlParserTest, AcceptsPaperTypoPartiton) {
  DdlCommand cmd = ParseDdl(
      "RECONFIGURE PRIMARY INDEXES PARTITON BY eadj.label SORT BY vnbr.city",
      ex_.graph.catalog());
  ASSERT_TRUE(cmd.ok()) << cmd.error;
  EXPECT_EQ(cmd.config.partitions.size(), 1u);
}

TEST_F(DdlParserTest, CreateOneHopViewFromExample6) {
  DdlCommand cmd = ParseDdl(
      "CREATE 1-HOP VIEW LargeUSDTrnx "
      "MATCH vs-[eadj]->vd "
      "WHERE eadj.currency=USD, eadj.amount>10000 "
      "INDEX AS FW-BW "
      "PARTITION BY eadj.label SORT BY vnbr.ID",
      ex_.graph.catalog());
  ASSERT_TRUE(cmd.ok()) << cmd.error;
  EXPECT_EQ(cmd.kind, DdlCommand::Kind::kCreateVp);
  EXPECT_EQ(cmd.view_name, "LargeUSDTrnx");
  EXPECT_TRUE(cmd.fwd);
  EXPECT_TRUE(cmd.bwd);
  ASSERT_EQ(cmd.pred.conjuncts().size(), 2u);
  const Comparison& currency = cmd.pred.conjuncts()[0];
  EXPECT_EQ(currency.lhs.site, PropSite::kAdjEdge);
  EXPECT_EQ(currency.op, CmpOp::kEq);
  EXPECT_EQ(currency.rhs_const.AsInt64(), 0);  // USD is category 0
  const Comparison& amount = cmd.pred.conjuncts()[1];
  EXPECT_EQ(amount.op, CmpOp::kGt);
  EXPECT_EQ(amount.rhs_const.AsInt64(), 10000);
  ASSERT_EQ(cmd.config.sorts.size(), 1u);
  EXPECT_EQ(cmd.config.sorts[0].source, SortSource::kNbrId);
}

TEST_F(DdlParserTest, CreateTwoHopViewFromMoneyFlow) {
  DdlCommand cmd = ParseDdl(
      "CREATE 2-HOP VIEW MoneyFlow "
      "MATCH vs-[eb]->vd-[eadj]->vnbr "
      "WHERE eb.date<eadj.date, eadj.amount<eb.amount "
      "INDEX AS PARTITION BY eadj.label SORT BY vnbr.city",
      ex_.graph.catalog());
  ASSERT_TRUE(cmd.ok()) << cmd.error;
  EXPECT_EQ(cmd.kind, DdlCommand::Kind::kCreateEp);
  EXPECT_EQ(cmd.ep_kind, EpKind::kDstFwd);
  EXPECT_TRUE(cmd.pred.HasCrossEdgeConjunct());
  ASSERT_EQ(cmd.config.partitions.size(), 1u);
  EXPECT_EQ(cmd.config.sorts[0].source, SortSource::kNbrProp);
  EXPECT_EQ(cmd.config.sorts[0].key, ex_.city_key);
}

TEST_F(DdlParserTest, AllFourTwoHopShapes) {
  const char* kShapes[4] = {
      "MATCH vs-[eb]->vd-[eadj]->vnbr",
      "MATCH vs-[eb]->vd<-[eadj]-vnbr",
      "MATCH vnbr-[eadj]->vs-[eb]->vd",
      "MATCH vnbr<-[eadj]-vs-[eb]->vd",
  };
  const EpKind kKinds[4] = {EpKind::kDstFwd, EpKind::kDstBwd, EpKind::kSrcFwd, EpKind::kSrcBwd};
  for (int i = 0; i < 4; ++i) {
    std::string ddl = std::string("CREATE 2-HOP VIEW V") + std::to_string(i) + " " + kShapes[i] +
                      " WHERE eb.date<eadj.date";
    DdlCommand cmd = ParseDdl(ddl, ex_.graph.catalog());
    ASSERT_TRUE(cmd.ok()) << ddl << ": " << cmd.error;
    EXPECT_EQ(cmd.ep_kind, kKinds[i]) << ddl;
  }
}

TEST_F(DdlParserTest, RejectsTwoHopWithoutCrossEdgePredicate) {
  // The "Redundant" example of Section III-B2.
  DdlCommand cmd = ParseDdl(
      "CREATE 2-HOP VIEW Redundant "
      "MATCH vs-[eb]->vd-[eadj]->vnbr "
      "WHERE eadj.amount<10000",
      ex_.graph.catalog());
  EXPECT_FALSE(cmd.ok());
  EXPECT_NE(cmd.error.find("both"), std::string::npos);
}

TEST_F(DdlParserTest, AddendInCrossEdgePredicate) {
  DdlCommand cmd = ParseDdl(
      "CREATE 2-HOP VIEW Flow "
      "MATCH vs-[eb]->vd-[eadj]->vnbr "
      "WHERE eadj.amount<eb.amount+500, eb.date<eadj.date",
      ex_.graph.catalog());
  ASSERT_TRUE(cmd.ok()) << cmd.error;
  EXPECT_EQ(cmd.pred.conjuncts()[0].rhs_addend, 500);
}

TEST_F(DdlParserTest, UnknownPropertyFails) {
  DdlCommand cmd = ParseDdl(
      "CREATE 1-HOP VIEW Bad MATCH vs-[eadj]->vd WHERE eadj.nonexistent>5",
      ex_.graph.catalog());
  EXPECT_FALSE(cmd.ok());
}

TEST_F(DdlParserTest, UnknownCategoryValueFails) {
  DdlCommand cmd = ParseDdl(
      "CREATE 1-HOP VIEW Bad MATCH vs-[eadj]->vd WHERE eadj.currency=JPY",
      ex_.graph.catalog());
  EXPECT_FALSE(cmd.ok());
}

TEST_F(DdlParserTest, DirectionFlags) {
  DdlCommand fw = ParseDdl(
      "CREATE 1-HOP VIEW F MATCH vs-[eadj]->vd WHERE eadj.amount>1 INDEX AS FW",
      ex_.graph.catalog());
  ASSERT_TRUE(fw.ok()) << fw.error;
  EXPECT_TRUE(fw.fwd);
  EXPECT_FALSE(fw.bwd);
  DdlCommand bw = ParseDdl(
      "CREATE 1-HOP VIEW B MATCH vs-[eadj]->vd WHERE eadj.amount>1 INDEX AS BW",
      ex_.graph.catalog());
  ASSERT_TRUE(bw.ok()) << bw.error;
  EXPECT_FALSE(bw.fwd);
  EXPECT_TRUE(bw.bwd);
}

TEST_F(DdlParserTest, GarbageFails) {
  EXPECT_FALSE(ParseDdl("DROP EVERYTHING", ex_.graph.catalog()).ok());
  EXPECT_FALSE(ParseDdl("", ex_.graph.catalog()).ok());
}

}  // namespace
}  // namespace aplus
