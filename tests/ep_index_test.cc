#include <gtest/gtest.h>

#include <set>

#include "datagen/example_graph.h"
#include "datagen/financial_props.h"
#include "datagen/power_law_generator.h"
#include "index/ep_index.h"

namespace aplus {
namespace {

std::set<edge_id_t> SliceEdges(const AdjListSlice& slice) {
  std::set<edge_id_t> edges;
  for (uint32_t i = 0; i < slice.size(); ++i) edges.insert(slice.EdgeAt(i));
  return edges;
}

class EpIndexTest : public ::testing::Test {
 protected:
  EpIndexTest()
      : ex_(BuildExampleGraph()),
        fwd_(&ex_.graph, Direction::kFwd),
        bwd_(&ex_.graph, Direction::kBwd) {
    fwd_.Build(IndexConfig::Default());
    bwd_.Build(IndexConfig::Default());
  }

  // The MoneyFlow view of Example 7: Destination-FW with
  // eb.date < eadj.date and eb.amt > eadj.amt.
  TwoHopViewDef MoneyFlowView() const {
    TwoHopViewDef view;
    view.name = "MoneyFlow";
    view.kind = EpKind::kDstFwd;
    view.pred.AddRef(PropRef{PropSite::kBoundEdge, ex_.date_key, false, false}, CmpOp::kLt,
                     PropRef{PropSite::kAdjEdge, ex_.date_key, false, false});
    view.pred.AddRef(PropRef{PropSite::kBoundEdge, ex_.amount_key, false, false}, CmpOp::kGt,
                     PropRef{PropSite::kAdjEdge, ex_.amount_key, false, false});
    return view;
  }

  edge_id_t T(int i) const { return ex_.transfers[i - 1]; }

  ExampleGraph ex_;
  PrimaryIndex fwd_;
  PrimaryIndex bwd_;
};

TEST_F(EpIndexTest, RequiresCrossEdgePredicate) {
  TwoHopViewDef bad;
  bad.name = "redundant";
  bad.kind = EpKind::kDstFwd;
  bad.pred.AddConst(PropRef{PropSite::kAdjEdge, ex_.amount_key, false, false}, CmpOp::kLt,
                    Value::Int64(10000));
  EXPECT_DEATH(EpIndex(&ex_.graph, &fwd_, &bwd_, bad, IndexConfig::Default()), "both edges");
}

TEST_F(EpIndexTest, MoneyFlowListOfT13IsT19) {
  // Example 7's headline behaviour.
  EpIndex ep(&ex_.graph, &fwd_, &bwd_, MoneyFlowView(), IndexConfig::Default());
  ep.Build();
  EXPECT_EQ(SliceEdges(ep.GetFullList(T(13))), std::set<edge_id_t>{T(19)});
}

TEST_F(EpIndexTest, T17InListsOfT1AndT16) {
  EpIndex ep(&ex_.graph, &fwd_, &bwd_, MoneyFlowView(), IndexConfig::Default());
  ep.Build();
  EXPECT_TRUE(SliceEdges(ep.GetFullList(T(1))).count(T(17)) > 0);
  EXPECT_TRUE(SliceEdges(ep.GetFullList(T(16))).count(T(17)) > 0);
}

TEST_F(EpIndexTest, MatchesReferenceComputation) {
  EpIndex ep(&ex_.graph, &fwd_, &bwd_, MoneyFlowView(), IndexConfig::Default());
  ep.Build();
  const PropertyColumn* date = ex_.graph.edge_props().column(ex_.date_key);
  const PropertyColumn* amount = ex_.graph.edge_props().column(ex_.amount_key);
  uint64_t total = 0;
  for (edge_id_t eb = 0; eb < ex_.graph.num_edges(); ++eb) {
    std::set<edge_id_t> expected;
    vertex_id_t anchor = ex_.graph.edge_dst(eb);
    for (edge_id_t e = 0; e < ex_.graph.num_edges(); ++e) {
      if (e == eb || ex_.graph.edge_src(e) != anchor) continue;
      if (date->IsNull(eb) || date->IsNull(e) || amount->IsNull(eb) || amount->IsNull(e)) {
        continue;
      }
      if (date->GetInt64(eb) < date->GetInt64(e) &&
          amount->GetInt64(eb) > amount->GetInt64(e)) {
        expected.insert(e);
      }
    }
    EXPECT_EQ(SliceEdges(ep.GetFullList(eb)), expected) << "eb=" << eb;
    total += expected.size();
  }
  EXPECT_EQ(ep.num_edges_indexed(), total);
}

TEST_F(EpIndexTest, PartitionedByAdjEdgeLabel) {
  EpIndex ep(&ex_.graph, &fwd_, &bwd_, MoneyFlowView(), IndexConfig::Default());
  ep.Build();
  // t16's list partitioned by label: {t17, t20} are Wire, {t18} is DD.
  std::set<edge_id_t> wires = SliceEdges(ep.GetList(T(16), {ex_.wire_label}));
  std::set<edge_id_t> dds = SliceEdges(ep.GetList(T(16), {ex_.dd_label}));
  for (edge_id_t e : wires) EXPECT_EQ(ex_.graph.edge_label(e), ex_.wire_label);
  for (edge_id_t e : dds) EXPECT_EQ(ex_.graph.edge_label(e), ex_.dd_label);
  std::set<edge_id_t> both;
  both.insert(wires.begin(), wires.end());
  both.insert(dds.begin(), dds.end());
  EXPECT_EQ(both, SliceEdges(ep.GetFullList(T(16))));
}

TEST_F(EpIndexTest, SortOnNeighbourCity) {
  IndexConfig config = IndexConfig::Default();
  config.sorts.clear();
  config.sorts.push_back({SortSource::kNbrProp, ex_.city_key});
  EpIndex ep(&ex_.graph, &fwd_, &bwd_, MoneyFlowView(), config);
  ep.Build();
  const PropertyColumn* city = ex_.graph.vertex_props().column(ex_.city_key);
  for (edge_id_t eb = 0; eb < ex_.graph.num_edges(); ++eb) {
    for (label_t label = 0; label < ex_.graph.catalog().num_edge_labels(); ++label) {
      AdjListSlice slice = ep.GetList(eb, {label});
      for (uint32_t i = 1; i < slice.size(); ++i) {
        EXPECT_LE(city->GetCategoryOrNullSlot(slice.NbrAt(i - 1)),
                  city->GetCategoryOrNullSlot(slice.NbrAt(i)));
      }
    }
  }
}

TEST_F(EpIndexTest, DestinationBwKind) {
  // Adjacency = in-edges of vd with a cross-edge date predicate.
  TwoHopViewDef view;
  view.name = "dstbw";
  view.kind = EpKind::kDstBwd;
  view.pred.AddRef(PropRef{PropSite::kBoundEdge, ex_.date_key, false, false}, CmpOp::kLt,
                   PropRef{PropSite::kAdjEdge, ex_.date_key, false, false});
  EpIndex ep(&ex_.graph, &fwd_, &bwd_, view, IndexConfig::Default());
  ep.Build();
  // t13 = v2 -> v5; in-edges of v5 with a later date: t18 (date 18) and
  // t3/t9 have dates 3/9 < 13 so excluded.
  std::set<edge_id_t> list = SliceEdges(ep.GetFullList(T(13)));
  EXPECT_TRUE(list.count(T(18)) > 0);
  EXPECT_EQ(list.count(T(3)), 0u);
  EXPECT_EQ(list.count(T(9)), 0u);
  for (edge_id_t e : list) EXPECT_EQ(ex_.graph.edge_dst(e), ex_.graph.edge_dst(T(13)));
}

TEST_F(EpIndexTest, SourceKindsAnchorAtVs) {
  TwoHopViewDef view;
  view.name = "srcfw";
  view.kind = EpKind::kSrcFwd;  // vnbr -[eadj]-> vs -[eb]-> vd
  view.pred.AddRef(PropRef{PropSite::kAdjEdge, ex_.date_key, false, false}, CmpOp::kLt,
                   PropRef{PropSite::kBoundEdge, ex_.date_key, false, false});
  EpIndex ep(&ex_.graph, &fwd_, &bwd_, view, IndexConfig::Default());
  ep.Build();
  // For t13 (v2 -> v5): eadj are in-edges of v2 with earlier dates:
  // t5 (5), t6 (6) — but not t15 (15) or t17 (17).
  std::set<edge_id_t> expected{T(5), T(6)};
  EXPECT_EQ(SliceEdges(ep.GetFullList(T(13))), expected);
}

TEST_F(EpIndexTest, EdgesCanAppearInManyLists) {
  // |E_indexed| of an EP index can exceed the graph's edge count.
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 2000;
  params.avg_degree = 10.0;
  GeneratePowerLawGraph(params, &graph);
  AddFinancialProperties(17, &graph, 50);
  prop_key_t date = graph.catalog().FindProperty("date", PropTargetKind::kEdge);
  prop_key_t amount = graph.catalog().FindProperty("amount", PropTargetKind::kEdge);
  PrimaryIndex fwd(&graph, Direction::kFwd);
  PrimaryIndex bwd(&graph, Direction::kBwd);
  fwd.Build(IndexConfig::Default());
  bwd.Build(IndexConfig::Default());
  TwoHopViewDef view;
  view.name = "flow";
  view.kind = EpKind::kDstFwd;
  view.pred.AddRef(PropRef{PropSite::kBoundEdge, date, false, false}, CmpOp::kLt,
                   PropRef{PropSite::kAdjEdge, date, false, false});
  view.pred.AddRef(PropRef{PropSite::kBoundEdge, amount, false, false}, CmpOp::kGt,
                   PropRef{PropSite::kAdjEdge, amount, false, false});
  EpIndex ep(&graph, &fwd, &bwd, view, IndexConfig::Default());
  ep.Build();
  EXPECT_GT(ep.num_edges_indexed(), 0u);
  // Offset-list storage: bytes per indexed edge should be small compared
  // to an (edge ID, neighbour ID) pair (12 bytes), excluding the CSR.
  double csr_bytes = 0;
  (void)csr_bytes;
  EXPECT_LT(static_cast<double>(ep.MemoryBytes()),
            static_cast<double>(fwd.MemoryBytes()) +
                12.0 * static_cast<double>(ep.num_edges_indexed()));
}

}  // namespace
}  // namespace aplus
