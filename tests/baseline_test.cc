#include <gtest/gtest.h>

#include "baseline/flat_adj_engine.h"
#include "baseline/linked_list_engine.h"
#include "datagen/example_graph.h"
#include "datagen/label_assigner.h"
#include "datagen/power_law_generator.h"
#include "index/index_store.h"
#include "optimizer/dp_optimizer.h"

namespace aplus {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() : ex_(BuildExampleGraph()), ll_(&ex_.graph), flat_(&ex_.graph) {}

  ExampleGraph ex_;
  LinkedListEngine ll_;
  FlatAdjEngine flat_;
};

TEST_F(BaselineTest, AdjacencyIterationMatchesGraph) {
  for (vertex_id_t v = 0; v < ex_.graph.num_vertices(); ++v) {
    uint64_t expected_out = 0;
    for (edge_id_t e = 0; e < ex_.graph.num_edges(); ++e) {
      if (ex_.graph.edge_src(e) == v) ++expected_out;
    }
    uint64_t ll_count = 0;
    ll_.ForEachEdge(v, Direction::kFwd, [&](vertex_id_t, edge_id_t, label_t) { ++ll_count; });
    uint64_t flat_count = 0;
    flat_.ForEachEdge(v, Direction::kFwd, [&](vertex_id_t, edge_id_t, label_t) { ++flat_count; });
    EXPECT_EQ(ll_count, expected_out) << "v=" << v;
    EXPECT_EQ(flat_count, expected_out) << "v=" << v;
  }
}

TEST_F(BaselineTest, EnginesAgreeOnSimpleQueries) {
  QueryGraph query;
  int a = query.AddVertex("a", ex_.account_label);
  int b = query.AddVertex("b", ex_.account_label);
  query.AddEdge(a, b, ex_.wire_label);
  EXPECT_EQ(ll_.CountMatches(query), flat_.CountMatches(query));
  EXPECT_EQ(ll_.CountMatches(query), 9u);  // 9 Wire transfers
}

TEST_F(BaselineTest, EnginesAgreeWithAplusOnTriangles) {
  IndexStore store(&ex_.graph);
  store.BuildPrimary(IndexConfig::Default());
  QueryGraph query;
  int a = query.AddVertex("a");
  int b = query.AddVertex("b");
  int c = query.AddVertex("c");
  query.AddEdge(a, b);
  query.AddEdge(b, c);
  query.AddEdge(a, c);
  DpOptimizer optimizer(&ex_.graph, &store);
  auto plan = optimizer.Optimize(query);
  ASSERT_NE(plan, nullptr);
  uint64_t aplus_count = plan->Execute();
  EXPECT_EQ(ll_.CountMatches(query), aplus_count);
  EXPECT_EQ(flat_.CountMatches(query), aplus_count);
}

TEST(BaselineLargeTest, AgreementOnLabelledGraph) {
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 1200;
  params.avg_degree = 5.0;
  GeneratePowerLawGraph(params, &graph);
  AssignRandomLabels(3, 2, 9, &graph);
  LinkedListEngine ll(&graph);
  FlatAdjEngine flat(&graph);
  IndexStore store(&graph);
  store.BuildPrimary(IndexConfig::Default());

  // Labelled 2-path.
  QueryGraph path;
  int a = path.AddVertex("a", graph.catalog().FindVertexLabel("VL0"));
  int b = path.AddVertex("b", graph.catalog().FindVertexLabel("VL1"));
  int c = path.AddVertex("c", graph.catalog().FindVertexLabel("VL2"));
  path.AddEdge(a, b, graph.catalog().FindEdgeLabel("EL0"));
  path.AddEdge(b, c, graph.catalog().FindEdgeLabel("EL1"));
  DpOptimizer optimizer(&graph, &store);
  auto plan = optimizer.Optimize(path);
  ASSERT_NE(plan, nullptr);
  uint64_t expected = plan->Execute();
  EXPECT_EQ(ll.CountMatches(path), expected);
  EXPECT_EQ(flat.CountMatches(path), expected);
}

TEST_F(BaselineTest, DistinctPathPairsDedups) {
  // v1 reaches {v2,v3,v4,v5} over 1 Wire hop and further over 2 hops;
  // distinct-pair counting must not exceed total path embeddings.
  std::vector<label_t> edge_labels{ex_.wire_label, ex_.wire_label};
  std::vector<label_t> vertex_labels{kInvalidLabel, kInvalidLabel, kInvalidLabel};
  uint64_t pairs = flat_.CountDistinctPathPairs(edge_labels, vertex_labels);
  QueryGraph query;
  int a = query.AddVertex("a");
  int b = query.AddVertex("b");
  int c = query.AddVertex("c");
  query.AddEdge(a, b, ex_.wire_label);
  query.AddEdge(b, c, ex_.wire_label);
  uint64_t embeddings = flat_.CountMatches(query);
  EXPECT_LE(pairs, embeddings + 10);  // pairs may differ but stay bounded
  EXPECT_GT(pairs, 0u);
}

TEST_F(BaselineTest, MemoryAccounting) {
  EXPECT_GT(ll_.MemoryBytes(), 0u);
  EXPECT_GT(flat_.MemoryBytes(), 0u);
}

TEST_F(BaselineTest, BudgetExhaustionStopsSearch) {
  QueryGraph query;
  int a = query.AddVertex("a");
  int b = query.AddVertex("b");
  int c = query.AddVertex("c");
  query.AddEdge(a, b);
  query.AddEdge(b, c);

  // A generous cap leaves the result intact and balances its charges.
  MemoryBudget roomy;
  roomy.Reset(64ull << 20);
  bool timed_out = false;
  bool exhausted = false;
  uint64_t unbudgeted = ll_.CountMatches(query);
  EXPECT_EQ(ll_.CountMatches(query, 0.0, &timed_out, &roomy, &exhausted), unbudgeted);
  EXPECT_FALSE(timed_out);
  EXPECT_FALSE(exhausted);
  EXPECT_EQ(roomy.used(), 0u) << "matcher must release all scratch charges";

  // A cap smaller than any candidate list stops the search with
  // kResourceExhausted rather than timing out or crashing.
  MemoryBudget tiny;
  tiny.Reset(1);
  exhausted = false;
  ll_.CountMatches(query, 0.0, &timed_out, &tiny, &exhausted);
  EXPECT_TRUE(exhausted);
  EXPECT_FALSE(timed_out);
  EXPECT_EQ(tiny.used(), 0u);

  MemoryBudget tiny_flat;
  tiny_flat.Reset(1);
  exhausted = false;
  flat_.CountMatches(query, 0.0, &timed_out, &tiny_flat, &exhausted);
  EXPECT_TRUE(exhausted);
}

}  // namespace
}  // namespace aplus
