// Partial materialization of 2-hop views under a memory budget — the
// future-work extension of Section III-B2: "a system should resort to
// partial materialization of these views to reduce the memory
// consumption under user-specified levels."

#include <gtest/gtest.h>

#include <set>

#include "core/database.h"
#include "datagen/financial_props.h"
#include "datagen/power_law_generator.h"

namespace aplus {
namespace {

class PartialEpTest : public ::testing::Test {
 protected:
  PartialEpTest() {
    Graph graph;
    PowerLawParams params;
    params.num_vertices = 1200;
    params.avg_degree = 8.0;
    params.seed = 5;
    GeneratePowerLawGraph(params, &graph);
    keys_ = AddFinancialProperties(6, &graph, 25);
    db_ = std::make_unique<Database>(std::move(graph));
    db_->BuildPrimaryIndexes();
  }

  Predicate FlowPred() const {
    Predicate pred;
    pred.AddRef(PropRef{PropSite::kBoundEdge, keys_.date, false, false}, CmpOp::kLt,
                PropRef{PropSite::kAdjEdge, keys_.date, false, false});
    pred.AddRef(PropRef{PropSite::kBoundEdge, keys_.amount, false, false}, CmpOp::kGt,
                PropRef{PropSite::kAdjEdge, keys_.amount, false, false});
    return pred;
  }

  QueryGraph FlowQuery() const {
    QueryGraph q;
    label_t elabel = db_->graph().catalog().FindEdgeLabel("E");
    int a1 = q.AddVertex("a1");
    int a2 = q.AddVertex("a2");
    int a3 = q.AddVertex("a3");
    q.AddEdge(a1, a2, elabel, "e1");
    q.AddEdge(a2, a3, elabel, "e2");
    QueryComparison date;
    date.lhs = QueryPropRef{0, true, keys_.date, false};
    date.op = CmpOp::kLt;
    date.rhs_is_const = false;
    date.rhs_ref = QueryPropRef{1, true, keys_.date, false};
    q.AddPredicate(date);
    QueryComparison amt;
    amt.lhs = QueryPropRef{0, true, keys_.amount, false};
    amt.op = CmpOp::kGt;
    amt.rhs_is_const = false;
    amt.rhs_ref = QueryPropRef{1, true, keys_.amount, false};
    q.AddPredicate(amt);
    QueryComparison bound;
    bound.lhs = QueryPropRef{0, false, kInvalidPropKey, true};
    bound.op = CmpOp::kLt;
    bound.rhs_const = Value::Int64(300);
    q.AddPredicate(bound);
    return q;
  }

  FinancialPropKeys keys_;
  std::unique_ptr<Database> db_;
};

TEST_F(PartialEpTest, BudgetLimitsMaterializedBytes) {
  EpIndex* full = db_->CreateEpIndex("full", EpKind::kDstFwd, FlowPred(), IndexConfig::Default());
  size_t full_bytes = full->MemoryBytes();
  ASSERT_GT(full_bytes, 40000u);
  EXPECT_TRUE(full->fully_materialized());

  size_t budget = full_bytes / 4;
  EpIndex* partial = db_->CreateEpIndex("partial", EpKind::kDstFwd, FlowPred(),
                                        IndexConfig::Default(), nullptr, budget);
  EXPECT_FALSE(partial->fully_materialized());
  // One page of slack is allowed (the budget check runs after each page).
  EXPECT_LT(partial->MemoryBytes(), budget + budget / 2);
  // Some prefix is materialized, some suffix is not.
  EXPECT_TRUE(partial->IsMaterialized(0));
  EXPECT_FALSE(partial->IsMaterialized(db_->graph().num_edges() - 1));
}

TEST_F(PartialEpTest, RuntimeFallbackMatchesMaterializedLists) {
  EpIndex* full = db_->CreateEpIndex("full", EpKind::kDstFwd, FlowPred(), IndexConfig::Default());
  EpIndex* partial = db_->CreateEpIndex("partial", EpKind::kDstFwd, FlowPred(),
                                        IndexConfig::Default(), nullptr,
                                        full->MemoryBytes() / 5);
  ASSERT_FALSE(partial->fully_materialized());
  for (edge_id_t eb = 0; eb < db_->graph().num_edges(); eb += 17) {
    std::set<edge_id_t> expected;
    AdjListSlice slice = full->GetFullList(eb);
    for (uint32_t i = 0; i < slice.size(); ++i) expected.insert(slice.EdgeAt(i));
    std::set<edge_id_t> got;
    if (partial->IsMaterialized(eb)) {
      AdjListSlice pslice = partial->GetFullList(eb);
      for (uint32_t i = 0; i < pslice.size(); ++i) got.insert(pslice.EdgeAt(i));
    } else {
      partial->ForEachRuntime(eb, [&](uint32_t, edge_id_t eadj, vertex_id_t) {
        got.insert(eadj);
      });
    }
    EXPECT_EQ(got, expected) << "eb=" << eb;
  }
}

TEST_F(PartialEpTest, QueriesCountIdenticallyUnderBudget) {
  QueryGraph query = FlowQuery();
  uint64_t base = db_->Execute(query).count;

  // Full EP index: counts unchanged, EP plan used.
  db_->CreateEpIndex("full", EpKind::kDstFwd, FlowPred(), IndexConfig::Default());
  EXPECT_EQ(db_->Execute(query).count, base);
  db_->index_store().DropSecondaryIndexes();

  // Partial EP index at a small budget: the ExtendOp fallback must keep
  // the counts identical.
  EpIndex* partial = db_->CreateEpIndex("partial", EpKind::kDstFwd, FlowPred(),
                                        IndexConfig::Default(), nullptr, 4096);
  ASSERT_FALSE(partial->fully_materialized());
  EXPECT_EQ(db_->Execute(query).count, base);
}

TEST_F(PartialEpTest, PartialIndexExcludedFromSortedIntersections) {
  IndexConfig city_sorted;
  city_sorted.partitions.push_back({PartitionSource::kEdgeLabel, kInvalidPropKey});
  city_sorted.sorts.push_back({SortSource::kNbrProp, keys_.city});
  EpIndex* partial = db_->CreateEpIndex("partial", EpKind::kDstFwd, FlowPred(), city_sorted,
                                        nullptr, 4096);
  ASSERT_FALSE(partial->fully_materialized());
  // The query still answers correctly (through whatever plan wins);
  // partial EP lists must never be handed to sorted operators.
  QueryGraph query = FlowQuery();
  QueryComparison city_eq;
  city_eq.lhs = QueryPropRef{0, false, keys_.city, false};
  city_eq.op = CmpOp::kEq;
  city_eq.rhs_is_const = false;
  city_eq.rhs_ref = QueryPropRef{2, false, keys_.city, false};
  query.AddPredicate(city_eq);
  uint64_t with_partial = db_->Execute(query).count;
  db_->index_store().DropSecondaryIndexes();
  EXPECT_EQ(db_->Execute(query).count, with_partial);
}

}  // namespace
}  // namespace aplus
