#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "datagen/example_graph.h"
#include "datagen/financial_props.h"
#include "datagen/label_assigner.h"
#include "datagen/power_law_generator.h"

namespace aplus {
namespace {

TEST(PowerLawGeneratorTest, HitsTargetSizes) {
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 5000;
  params.avg_degree = 8.0;
  GeneratePowerLawGraph(params, &graph);
  EXPECT_EQ(graph.num_vertices(), 5000u);
  EXPECT_EQ(graph.num_edges(), 40000u);
  EXPECT_NEAR(graph.average_degree(), 8.0, 0.01);
}

TEST(PowerLawGeneratorTest, DeterministicForSeed) {
  Graph a;
  Graph b;
  PowerLawParams params;
  params.num_vertices = 2000;
  params.avg_degree = 5.0;
  params.seed = 7;
  GeneratePowerLawGraph(params, &a);
  GeneratePowerLawGraph(params, &b);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (edge_id_t e = 0; e < a.num_edges(); e += 97) {
    EXPECT_EQ(a.edge_src(e), b.edge_src(e));
    EXPECT_EQ(a.edge_dst(e), b.edge_dst(e));
  }
}

TEST(PowerLawGeneratorTest, DegreeDistributionIsSkewed) {
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 10000;
  params.avg_degree = 10.0;
  GeneratePowerLawGraph(params, &graph);
  std::vector<uint32_t> out_degree(graph.num_vertices(), 0);
  for (edge_id_t e = 0; e < graph.num_edges(); ++e) out_degree[graph.edge_src(e)]++;
  uint32_t max_degree = *std::max_element(out_degree.begin(), out_degree.end());
  // Preferential attachment should produce hubs far above the mean.
  EXPECT_GT(max_degree, 10 * params.avg_degree);
}

TEST(PowerLawGeneratorTest, NoSelfLoops) {
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 3000;
  params.avg_degree = 6.0;
  GeneratePowerLawGraph(params, &graph);
  for (edge_id_t e = 0; e < graph.num_edges(); ++e) {
    EXPECT_NE(graph.edge_src(e), graph.edge_dst(e));
  }
}

TEST(DatasetSpecTest, TableOneSpecs) {
  size_t count = 0;
  const DatasetSpec* specs = TableOneDatasets(&count);
  ASSERT_EQ(count, 4u);
  EXPECT_EQ(specs[0].name, "Ork");
  EXPECT_NEAR(specs[0].avg_degree, 39.03, 0.01);
  EXPECT_EQ(specs[3].name, "Brk");
}

TEST(DatasetSpecTest, ScaledGeneration) {
  size_t count = 0;
  const DatasetSpec* specs = TableOneDatasets(&count);
  Graph graph;
  GenerateDataset(specs[3], 0.01, 1, &graph);  // Brk at 1%
  EXPECT_NEAR(static_cast<double>(graph.num_vertices()), 6850, 10);
  EXPECT_NEAR(graph.average_degree(), specs[3].avg_degree, 0.1);
}

TEST(LabelAssignerTest, GijMethodology) {
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 4000;
  params.avg_degree = 4.0;
  GeneratePowerLawGraph(params, &graph);
  AssignRandomLabels(4, 2, 11, &graph);
  EXPECT_EQ(graph.catalog().FindVertexLabel("VL3") != kInvalidLabel, true);
  EXPECT_EQ(graph.catalog().FindEdgeLabel("EL1") != kInvalidLabel, true);
  std::vector<uint64_t> vcounts(graph.catalog().num_vertex_labels(), 0);
  for (vertex_id_t v = 0; v < graph.num_vertices(); ++v) vcounts[graph.vertex_label(v)]++;
  // All four labels used, roughly uniformly.
  label_t vl0 = graph.catalog().FindVertexLabel("VL0");
  label_t vl3 = graph.catalog().FindVertexLabel("VL3");
  EXPECT_GT(vcounts[vl0], 800u);
  EXPECT_GT(vcounts[vl3], 800u);
}

TEST(FinancialPropsTest, RangesMatchPaper) {
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 2000;
  params.avg_degree = 5.0;
  GeneratePowerLawGraph(params, &graph);
  FinancialPropKeys keys = AddFinancialProperties(5, &graph, 100);
  const PropertyColumn* amount = graph.edge_props().column(keys.amount);
  const PropertyColumn* date = graph.edge_props().column(keys.date);
  for (edge_id_t e = 0; e < graph.num_edges(); ++e) {
    EXPECT_GE(amount->GetInt64(e), 1);
    EXPECT_LE(amount->GetInt64(e), 1000);
    EXPECT_GE(date->GetInt64(e), 0);
    EXPECT_LT(date->GetInt64(e), kFiveYearsSeconds);
  }
  const PropertyColumn* acc = graph.vertex_props().column(keys.acc);
  const PropertyColumn* city = graph.vertex_props().column(keys.city);
  for (vertex_id_t v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_LT(acc->GetCategoryOrNullSlot(v), kNumAccountTypes);
    EXPECT_LT(city->GetCategoryOrNullSlot(v), 100u);
  }
}

TEST(FinancialPropsTest, TimePropertySelectivityAnchor) {
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 2000;
  params.avg_degree = 10.0;
  GeneratePowerLawGraph(params, &graph);
  prop_key_t time_key = AddTimeProperty(3, 1000000, &graph);
  const PropertyColumn* time = graph.edge_props().column(time_key);
  // alpha at the 5th percentile of the range -> ~5% of edges pass.
  int64_t alpha = 50000;
  uint64_t passing = 0;
  for (edge_id_t e = 0; e < graph.num_edges(); ++e) {
    if (time->GetInt64(e) < alpha) ++passing;
  }
  double fraction = static_cast<double>(passing) / static_cast<double>(graph.num_edges());
  EXPECT_NEAR(fraction, 0.05, 0.01);
}

}  // namespace
}  // namespace aplus
