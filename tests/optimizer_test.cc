#include <gtest/gtest.h>

#include "datagen/example_graph.h"
#include "index/index_store.h"
#include "optimizer/dp_optimizer.h"
#include "optimizer/index_advisor.h"
#include "optimizer/plan_printer.h"

namespace aplus {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : ex_(BuildExampleGraph()), store_(&ex_.graph) {
    store_.BuildPrimary(IndexConfig::Default());
  }

  // Brute-force reference: enumerate all isomorphic matches.
  uint64_t BruteForce(const QueryGraph& query) {
    uint64_t count = 0;
    MatchState state;
    state.Reset(query.num_vertices(), query.num_edges());
    BruteRecurse(query, 0, &state, &count);
    return count;
  }

  void BruteRecurse(const QueryGraph& query, int var, MatchState* state, uint64_t* count) {
    if (var == query.num_vertices()) {
      // Bind edges in all possible ways.
      BindEdges(query, 0, state, count);
      return;
    }
    const QueryVertex& qv = query.vertex(var);
    for (vertex_id_t v = 0; v < ex_.graph.num_vertices(); ++v) {
      if (qv.bound != kInvalidVertex && qv.bound != v) continue;
      if (qv.label != kInvalidLabel && ex_.graph.vertex_label(v) != qv.label) continue;
      if (state->VertexAlreadyBound(v)) continue;
      state->v[var] = v;
      BruteRecurse(query, var + 1, state, count);
      state->v[var] = kInvalidVertex;
    }
  }

  void BindEdges(const QueryGraph& query, int qe, MatchState* state, uint64_t* count) {
    if (qe == query.num_edges()) {
      for (const QueryComparison& cmp : query.predicates()) {
        if (!EvalQueryComparison(ex_.graph, cmp, *state)) return;
      }
      ++(*count);
      return;
    }
    const QueryEdge& edge = query.edge(qe);
    for (edge_id_t e = 0; e < ex_.graph.num_edges(); ++e) {
      if (ex_.graph.edge_src(e) != state->v[edge.from]) continue;
      if (ex_.graph.edge_dst(e) != state->v[edge.to]) continue;
      if (edge.label != kInvalidLabel && ex_.graph.edge_label(e) != edge.label) continue;
      if (state->EdgeAlreadyBound(e)) continue;
      state->e[qe] = e;
      BindEdges(query, qe + 1, state, count);
      state->e[qe] = kInvalidEdge;
    }
  }

  ExampleGraph ex_;
  IndexStore store_;
};

TEST_F(OptimizerTest, SingleEdgeQuery) {
  QueryGraph query;
  int a = query.AddVertex("a", ex_.account_label);
  int b = query.AddVertex("b", ex_.account_label);
  query.AddEdge(a, b, ex_.wire_label);
  DpOptimizer optimizer(&ex_.graph, &store_);
  auto plan = optimizer.Optimize(query);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->Execute(), BruteForce(query));
}

TEST_F(OptimizerTest, TwoHopMatchesBruteForce) {
  QueryGraph query;
  int c1 = query.AddVertex("c1", ex_.customer_label);
  int a1 = query.AddVertex("a1", ex_.account_label);
  int a2 = query.AddVertex("a2", ex_.account_label);
  query.AddEdge(c1, a1, ex_.owns_label);
  query.AddEdge(a1, a2, ex_.wire_label);
  DpOptimizer optimizer(&ex_.graph, &store_);
  auto plan = optimizer.Optimize(query);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->Execute(), BruteForce(query));
}

TEST_F(OptimizerTest, LabelledTriangleUsesIntersection) {
  // Example 3 analogue: 3-edge cyclic Wire transfers. Edge labels pin
  // the innermost (neighbour-ID sorted) sublists, enabling the WCOJ
  // intersection.
  QueryGraph query;
  int a = query.AddVertex("a");
  int b = query.AddVertex("b");
  int c = query.AddVertex("c");
  query.AddEdge(a, b, ex_.wire_label);
  query.AddEdge(b, c, ex_.wire_label);
  query.AddEdge(a, c, ex_.wire_label);
  DpOptimizer optimizer(&ex_.graph, &store_);
  auto plan = optimizer.Optimize(query);
  ASSERT_NE(plan, nullptr);
  uint64_t count = plan->Execute();
  EXPECT_EQ(count, BruteForce(query));
  EXPECT_GE(count, 1u);  // v1 -t17-> v2 -t8-> v4, v1 -t20-> v4
  // The last extension closes two edges -> must be an intersection.
  bool has_intersect = false;
  for (const PlanStep& step : optimizer.last_steps()) {
    if (step.kind == PlanStep::Kind::kExtendIntersect) has_intersect = true;
  }
  EXPECT_TRUE(has_intersect);
}

TEST_F(OptimizerTest, UnlabelledTriangleFallsBackToVerify) {
  // Without edge labels the default config's whole-vertex slices span
  // label partitions and are not neighbour-sorted; the optimizer must
  // use the extend+verify fallback and still count correctly.
  QueryGraph query;
  int a = query.AddVertex("a");
  int b = query.AddVertex("b");
  int c = query.AddVertex("c");
  query.AddEdge(a, b);
  query.AddEdge(b, c);
  query.AddEdge(a, c);
  DpOptimizer optimizer(&ex_.graph, &store_);
  auto plan = optimizer.Optimize(query);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->Execute(), BruteForce(query));
}

TEST_F(OptimizerTest, PredicatePushedIntoScanAndResiduals) {
  QueryGraph query;
  int a = query.AddVertex("a", ex_.account_label);
  int b = query.AddVertex("b", ex_.account_label);
  query.AddEdge(a, b, ex_.dd_label, "e1");
  QueryComparison amount_pred;
  amount_pred.lhs = QueryPropRef{0, true, ex_.amount_key, false};
  amount_pred.op = CmpOp::kGt;
  amount_pred.rhs_const = Value::Int64(60);
  query.AddPredicate(amount_pred);
  DpOptimizer optimizer(&ex_.graph, &store_);
  auto plan = optimizer.Optimize(query);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->Execute(), BruteForce(query));
}

TEST_F(OptimizerTest, UsesVpIndexWhenPredicateSubsumes) {
  // Create a VP index on amount > 50; query wants amount > 100.
  OneHopViewDef view;
  view.name = "large";
  view.pred.AddConst(PropRef{PropSite::kAdjEdge, ex_.amount_key, false, false}, CmpOp::kGt,
                     Value::Int64(50));
  store_.CreateVpIndex(view, IndexConfig::Default(), Direction::kFwd);

  QueryGraph query;
  int a = query.AddVertex("a", kInvalidLabel, ex_.accounts[0]);
  int b = query.AddVertex("b");
  query.AddEdge(a, b, kInvalidLabel, "e1");
  QueryComparison pred;
  pred.lhs = QueryPropRef{0, true, ex_.amount_key, false};
  pred.op = CmpOp::kGt;
  pred.rhs_const = Value::Int64(100);
  query.AddPredicate(pred);

  DpOptimizer optimizer(&ex_.graph, &store_);
  auto plan = optimizer.Optimize(query);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->Execute(), BruteForce(query));
  // The chosen extend should read the VP index (it is smaller).
  bool uses_vp = false;
  for (const PlanStep& step : optimizer.last_steps()) {
    for (const ListDescriptor& list : step.lists) {
      if (list.source == ListDescriptor::Source::kVp) uses_vp = true;
    }
  }
  EXPECT_TRUE(uses_vp);
}

TEST_F(OptimizerTest, RejectsVpIndexWhenQueryIsBroader) {
  // Index on amount > 50 must NOT serve a query wanting amount > 10.
  OneHopViewDef view;
  view.name = "large";
  view.pred.AddConst(PropRef{PropSite::kAdjEdge, ex_.amount_key, false, false}, CmpOp::kGt,
                     Value::Int64(50));
  store_.CreateVpIndex(view, IndexConfig::Default(), Direction::kFwd);

  QueryGraph query;
  int a = query.AddVertex("a", kInvalidLabel, ex_.accounts[0]);
  int b = query.AddVertex("b");
  query.AddEdge(a, b, kInvalidLabel, "e1");
  QueryComparison pred;
  pred.lhs = QueryPropRef{0, true, ex_.amount_key, false};
  pred.op = CmpOp::kGt;
  pred.rhs_const = Value::Int64(10);
  query.AddPredicate(pred);

  DpOptimizer optimizer(&ex_.graph, &store_);
  auto plan = optimizer.Optimize(query);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->Execute(), BruteForce(query));
  for (const PlanStep& step : optimizer.last_steps()) {
    for (const ListDescriptor& list : step.lists) {
      EXPECT_NE(list.source, ListDescriptor::Source::kVp);
    }
  }
}

TEST_F(OptimizerTest, MultiExtendChosenForCityEquality) {
  // MF1-style core: a2, a4 both adjacent to a1 with a2.city = a4.city
  // and city-sorted VP indexes available in both directions.
  IndexConfig city_config = IndexConfig::Default();
  city_config.sorts.clear();
  city_config.sorts.push_back({SortSource::kNbrProp, ex_.city_key});
  OneHopViewDef all;
  all.name = "VPc";
  store_.CreateVpIndex(all, city_config, Direction::kFwd);
  store_.CreateVpIndex(all, city_config, Direction::kBwd);

  QueryGraph query;
  int a1 = query.AddVertex("a1", kInvalidLabel, ex_.accounts[1]);  // v2
  int a2 = query.AddVertex("a2");
  int a4 = query.AddVertex("a4");
  query.AddEdge(a1, a2, ex_.wire_label, "e1");
  query.AddEdge(a1, a4, ex_.dd_label, "e2");
  QueryComparison eq;
  eq.lhs = QueryPropRef{a2, false, ex_.city_key, false};
  eq.op = CmpOp::kEq;
  eq.rhs_is_const = false;
  eq.rhs_ref = QueryPropRef{a4, false, ex_.city_key, false};
  query.AddPredicate(eq);

  DpOptimizer optimizer(&ex_.graph, &store_);
  auto plan = optimizer.Optimize(query);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->Execute(), BruteForce(query));
  bool has_multi = false;
  for (const PlanStep& step : optimizer.last_steps()) {
    if (step.kind == PlanStep::Kind::kMultiExtend) has_multi = true;
  }
  EXPECT_TRUE(has_multi);
}

TEST_F(OptimizerTest, EpIndexUsedForCrossEdgePredicate) {
  // Example 7 core: r1 bound to t13; extend to r2 with Pf(r1, r2).
  TwoHopViewDef view;
  view.name = "MoneyFlow";
  view.kind = EpKind::kDstFwd;
  view.pred.AddRef(PropRef{PropSite::kBoundEdge, ex_.date_key, false, false}, CmpOp::kLt,
                   PropRef{PropSite::kAdjEdge, ex_.date_key, false, false});
  view.pred.AddRef(PropRef{PropSite::kBoundEdge, ex_.amount_key, false, false}, CmpOp::kGt,
                   PropRef{PropSite::kAdjEdge, ex_.amount_key, false, false});
  store_.CreateEpIndex(view, IndexConfig::Default());

  QueryGraph query;
  int a1 = query.AddVertex("a1", kInvalidLabel, ex_.accounts[1]);  // v2 (src of t13)
  int a2 = query.AddVertex("a2", kInvalidLabel, ex_.accounts[4]);  // v5 (dst of t13)
  int a3 = query.AddVertex("a3");
  query.AddEdge(a1, a2, kInvalidLabel, "r1");
  query.AddEdge(a2, a3, kInvalidLabel, "r2");
  QueryComparison date_pred;
  date_pred.lhs = QueryPropRef{0, true, ex_.date_key, false};
  date_pred.op = CmpOp::kLt;
  date_pred.rhs_is_const = false;
  date_pred.rhs_ref = QueryPropRef{1, true, ex_.date_key, false};
  query.AddPredicate(date_pred);
  QueryComparison amt_pred;
  amt_pred.lhs = QueryPropRef{0, true, ex_.amount_key, false};
  amt_pred.op = CmpOp::kGt;
  amt_pred.rhs_is_const = false;
  amt_pred.rhs_ref = QueryPropRef{1, true, ex_.amount_key, false};
  query.AddPredicate(amt_pred);

  DpOptimizer optimizer(&ex_.graph, &store_);
  auto plan = optimizer.Optimize(query);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->Execute(), BruteForce(query));
  bool uses_ep = false;
  for (const PlanStep& step : optimizer.last_steps()) {
    for (const ListDescriptor& list : step.lists) {
      if (list.source == ListDescriptor::Source::kEp) uses_ep = true;
    }
  }
  EXPECT_TRUE(uses_ep);
}

TEST_F(OptimizerTest, PlanTreeRenders) {
  QueryGraph query;
  int a = query.AddVertex("a", ex_.account_label);
  int b = query.AddVertex("b", ex_.account_label);
  query.AddEdge(a, b, ex_.wire_label);
  DpOptimizer optimizer(&ex_.graph, &store_);
  auto plan = optimizer.Optimize(query);
  ASSERT_NE(plan, nullptr);
  std::string tree = RenderPlanTree(query, ex_.graph.catalog(), optimizer.last_steps());
  EXPECT_NE(tree.find("SCAN"), std::string::npos);
  EXPECT_NE(tree.find("EXTEND"), std::string::npos);
}

TEST_F(OptimizerTest, IndexAdvisorEnumeratesCandidates) {
  QueryGraph query;
  int a = query.AddVertex("a");
  int b = query.AddVertex("b");
  query.AddEdge(a, b, kInvalidLabel, "e1");
  QueryComparison eq_cur;
  eq_cur.lhs = QueryPropRef{0, true, ex_.currency_key, false};
  eq_cur.op = CmpOp::kEq;
  eq_cur.rhs_const = Value::Category(kCurrencyUsd);
  query.AddPredicate(eq_cur);
  QueryComparison range_amt;
  range_amt.lhs = QueryPropRef{0, true, ex_.amount_key, false};
  range_amt.op = CmpOp::kGt;
  range_amt.rhs_const = Value::Int64(10000);
  query.AddPredicate(range_amt);

  std::vector<const QueryGraph*> workload{&query};
  std::vector<IndexCandidate> candidates = EnumerateIndexCandidates(ex_.graph, workload);
  bool has_partition = false;
  bool has_sort = false;
  for (const IndexCandidate& c : candidates) {
    if (c.kind == IndexCandidate::Kind::kPartitionCriterion && c.key == ex_.currency_key) {
      has_partition = true;
    }
    if (c.kind == IndexCandidate::Kind::kSortCriterion && c.key == ex_.amount_key) {
      has_sort = true;
    }
  }
  EXPECT_TRUE(has_partition);
  EXPECT_TRUE(has_sort);
}

}  // namespace
}  // namespace aplus
