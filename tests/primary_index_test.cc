#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "datagen/example_graph.h"
#include "datagen/financial_props.h"
#include "datagen/power_law_generator.h"
#include "index/primary_index.h"

namespace aplus {
namespace {

class PrimaryIndexTest : public ::testing::Test {
 protected:
  PrimaryIndexTest() : ex_(BuildExampleGraph()) {}

  std::set<edge_id_t> SliceEdges(const AdjListSlice& slice) {
    std::set<edge_id_t> edges;
    for (uint32_t i = 0; i < slice.size(); ++i) edges.insert(slice.EdgeAt(i));
    return edges;
  }

  ExampleGraph ex_;
};

TEST_F(PrimaryIndexTest, DefaultConfigIndexesEveryEdge) {
  PrimaryIndex fwd(&ex_.graph, Direction::kFwd);
  fwd.Build(IndexConfig::Default());
  EXPECT_EQ(fwd.num_edges_indexed(), ex_.graph.num_edges());
  uint64_t total = 0;
  for (vertex_id_t v = 0; v < ex_.graph.num_vertices(); ++v) {
    total += fwd.GetFullList(v).size();
  }
  EXPECT_EQ(total, ex_.graph.num_edges());
}

TEST_F(PrimaryIndexTest, ForwardListsHoldOutEdges) {
  PrimaryIndex fwd(&ex_.graph, Direction::kFwd);
  fwd.Build(IndexConfig::Default());
  // v2's outgoing transfers are t7, t8, t13 (plus no Owns from accounts).
  std::set<edge_id_t> expected{ex_.transfers[6], ex_.transfers[7], ex_.transfers[12]};
  EXPECT_EQ(SliceEdges(fwd.GetFullList(ex_.accounts[1])), expected);
}

TEST_F(PrimaryIndexTest, BackwardListsHoldInEdges) {
  PrimaryIndex bwd(&ex_.graph, Direction::kBwd);
  bwd.Build(IndexConfig::Default());
  // v2's incoming edges: transfers t5, t6, t15, t17 plus Bob's Owns e2.
  std::set<edge_id_t> expected{ex_.transfers[4], ex_.transfers[5], ex_.transfers[14],
                               ex_.transfers[16], ex_.owns[1]};
  EXPECT_EQ(SliceEdges(bwd.GetFullList(ex_.accounts[1])), expected);
}

TEST_F(PrimaryIndexTest, EdgeLabelPartitionSlicing) {
  PrimaryIndex fwd(&ex_.graph, Direction::kFwd);
  fwd.Build(IndexConfig::Default());
  // v1's Wire slice: t4, t17, t20. DD slice: t18.
  std::set<edge_id_t> wires{ex_.transfers[3], ex_.transfers[16], ex_.transfers[19]};
  EXPECT_EQ(SliceEdges(fwd.GetList(ex_.accounts[0], {ex_.wire_label})), wires);
  std::set<edge_id_t> dds{ex_.transfers[17]};
  EXPECT_EQ(SliceEdges(fwd.GetList(ex_.accounts[0], {ex_.dd_label})), dds);
  EXPECT_TRUE(SliceEdges(fwd.GetList(ex_.accounts[0], {ex_.owns_label})).empty());
}

TEST_F(PrimaryIndexTest, SublistsAreUnionOfPartitions) {
  // Section III-A1: L = L_W u L_DD and sublists are contiguous.
  PrimaryIndex fwd(&ex_.graph, Direction::kFwd);
  fwd.Build(IndexConfig::Default());
  for (vertex_id_t v = 0; v < 5; ++v) {
    std::set<edge_id_t> whole = SliceEdges(fwd.GetFullList(ex_.accounts[v]));
    std::set<edge_id_t> merged;
    for (label_t label = 0; label < ex_.graph.catalog().num_edge_labels(); ++label) {
      std::set<edge_id_t> part = SliceEdges(fwd.GetList(ex_.accounts[v], {label}));
      merged.insert(part.begin(), part.end());
    }
    EXPECT_EQ(whole, merged);
  }
}

TEST_F(PrimaryIndexTest, DefaultSortIsNeighbourId) {
  PrimaryIndex fwd(&ex_.graph, Direction::kFwd);
  fwd.Build(IndexConfig::Default());
  for (vertex_id_t v = 0; v < ex_.graph.num_vertices(); ++v) {
    for (label_t label = 0; label < ex_.graph.catalog().num_edge_labels(); ++label) {
      AdjListSlice slice = fwd.GetList(v, {label});
      for (uint32_t i = 1; i < slice.size(); ++i) {
        EXPECT_LE(slice.NbrAt(i - 1), slice.NbrAt(i));
      }
    }
  }
}

TEST_F(PrimaryIndexTest, NestedCurrencyPartitioning) {
  // The Section III reconfiguration: PARTITION BY eadj.label,
  // eadj.currency SORT BY vnbr.city.
  IndexConfig config;
  config.partitions.push_back({PartitionSource::kEdgeLabel, kInvalidPropKey});
  config.partitions.push_back({PartitionSource::kEdgeProp, ex_.currency_key});
  config.sorts.push_back({SortSource::kNbrProp, ex_.city_key});
  PrimaryIndex fwd(&ex_.graph, Direction::kFwd);
  fwd.Build(config);
  EXPECT_EQ(fwd.num_edges_indexed(), ex_.graph.num_edges());
  // v1's Wire+EUR slice: t4 (EUR 200) and t17 (EUR 25).
  std::set<edge_id_t> eur_wires{ex_.transfers[3], ex_.transfers[16]};
  EXPECT_EQ(SliceEdges(fwd.GetList(ex_.accounts[0], {ex_.wire_label, kCurrencyEur})), eur_wires);
  // v1's Wire+USD slice: t20 only.
  std::set<edge_id_t> usd_wires{ex_.transfers[19]};
  EXPECT_EQ(SliceEdges(fwd.GetList(ex_.accounts[0], {ex_.wire_label, kCurrencyUsd})), usd_wires);
  // Prefix access (only Wire) still returns the whole Wire list.
  EXPECT_EQ(fwd.GetList(ex_.accounts[0], {ex_.wire_label}).size(), 3u);
}

TEST_F(PrimaryIndexTest, NullsGoToLastPartition) {
  // Owns edges have null currency; with currency partitioning they land
  // in the extra null slot (domain_size).
  IndexConfig config;
  config.partitions.push_back({PartitionSource::kEdgeProp, ex_.currency_key});
  config.sorts.push_back({SortSource::kNbrId, kInvalidPropKey});
  PrimaryIndex fwd(&ex_.graph, Direction::kFwd);
  fwd.Build(config);
  vertex_id_t alice = ex_.customers[1];
  AdjListSlice null_slice = fwd.GetList(alice, {3});  // domain_size = 3
  EXPECT_EQ(null_slice.size(), 2u);                   // Alice owns v1 and v4
}

TEST_F(PrimaryIndexTest, SortByCityOrdersLists) {
  IndexConfig config = IndexConfig::Default();
  config.sorts.clear();
  config.sorts.push_back({SortSource::kNbrProp, ex_.city_key});
  PrimaryIndex fwd(&ex_.graph, Direction::kFwd);
  fwd.Build(config);
  const PropertyColumn* city = ex_.graph.vertex_props().column(ex_.city_key);
  for (vertex_id_t v = 0; v < 5; ++v) {
    for (label_t label = 0; label < ex_.graph.catalog().num_edge_labels(); ++label) {
      AdjListSlice slice = fwd.GetList(ex_.accounts[v], {label});
      for (uint32_t i = 1; i < slice.size(); ++i) {
        EXPECT_LE(city->GetCategoryOrNullSlot(slice.NbrAt(i - 1)),
                  city->GetCategoryOrNullSlot(slice.NbrAt(i)));
      }
    }
  }
}

TEST_F(PrimaryIndexTest, ReconfigurationPreservesEdgeSet) {
  PrimaryIndex fwd(&ex_.graph, Direction::kFwd);
  fwd.Build(IndexConfig::Default());
  std::set<edge_id_t> before = SliceEdges(fwd.GetFullList(ex_.accounts[0]));
  IndexConfig config;
  config.partitions.push_back({PartitionSource::kEdgeLabel, kInvalidPropKey});
  config.partitions.push_back({PartitionSource::kNbrLabel, kInvalidPropKey});
  config.sorts.push_back({SortSource::kNbrLabel, kInvalidPropKey});
  fwd.Build(config);
  EXPECT_EQ(SliceEdges(fwd.GetFullList(ex_.accounts[0])), before);
}

TEST_F(PrimaryIndexTest, GetListBaseCoversFullList) {
  PrimaryIndex fwd(&ex_.graph, Direction::kFwd);
  fwd.Build(IndexConfig::Default());
  const vertex_id_t* nbrs;
  const edge_id_t* eids;
  uint32_t len;
  fwd.GetListBase(ex_.accounts[0], &nbrs, &eids, &len);
  EXPECT_EQ(len, 4u);  // t4, t17, t18, t20
  AdjListSlice full = fwd.GetFullList(ex_.accounts[0]);
  EXPECT_EQ(full.nbrs, nbrs);
  EXPECT_EQ(full.len, len);
}

TEST(PrimaryIndexLargeTest, SpansManyPages) {
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 1000;  // > 15 pages of 64
  params.avg_degree = 7.0;
  GeneratePowerLawGraph(params, &graph);
  PrimaryIndex fwd(&graph, Direction::kFwd);
  PrimaryIndex bwd(&graph, Direction::kBwd);
  fwd.Build(IndexConfig::Default());
  bwd.Build(IndexConfig::Default());
  EXPECT_EQ(fwd.num_pages(), 16u);
  // Cross-check against a reference adjacency computation.
  std::vector<std::vector<edge_id_t>> expected_out(graph.num_vertices());
  for (edge_id_t e = 0; e < graph.num_edges(); ++e) expected_out[graph.edge_src(e)].push_back(e);
  for (vertex_id_t v = 0; v < graph.num_vertices(); ++v) {
    AdjListSlice slice = fwd.GetFullList(v);
    ASSERT_EQ(slice.size(), expected_out[v].size()) << "v=" << v;
    std::set<edge_id_t> got;
    for (uint32_t i = 0; i < slice.size(); ++i) got.insert(slice.EdgeAt(i));
    std::set<edge_id_t> want(expected_out[v].begin(), expected_out[v].end());
    EXPECT_EQ(got, want) << "v=" << v;
  }
  // Memory: ID lists store 4-byte neighbour + 8-byte edge ids.
  EXPECT_GE(fwd.MemoryBytes(), graph.num_edges() * 12);
}

TEST(EncodeDoubleSortKeyTest, PreservesOrdering) {
  std::vector<double> values{-1e300, -5.5, -0.0, 0.0, 1e-10, 3.14, 1e300};
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_LE(EncodeDoubleSortKey(values[i - 1]), EncodeDoubleSortKey(values[i]))
        << values[i - 1] << " vs " << values[i];
  }
}

TEST_F(PrimaryIndexTest, PartitionLevelBytesGrowWithFanout) {
  PrimaryIndex flat(&ex_.graph, Direction::kFwd);
  flat.Build(IndexConfig::Flat());
  PrimaryIndex partitioned(&ex_.graph, Direction::kFwd);
  IndexConfig config;
  config.partitions.push_back({PartitionSource::kEdgeLabel, kInvalidPropKey});
  config.partitions.push_back({PartitionSource::kNbrLabel, kInvalidPropKey});
  config.sorts.push_back({SortSource::kNbrId, kInvalidPropKey});
  partitioned.Build(config);
  EXPECT_GT(partitioned.PartitionLevelBytes(), flat.PartitionLevelBytes());
}

}  // namespace
}  // namespace aplus
