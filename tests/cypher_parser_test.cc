// Parses the openCypher queries that appear verbatim in the paper's
// Examples 1-7 and verifies both the parsed structure and, through the
// Database facade, the counted results on the Figure 1 graph.

#include <gtest/gtest.h>

#include "core/database.h"
#include "datagen/example_graph.h"
#include "query/cypher_parser.h"

namespace aplus {
namespace {

class CypherParserTest : public ::testing::Test {
 protected:
  CypherParserTest() : ex_(BuildExampleGraph()) {
    Catalog& catalog = ex_.graph.catalog();
    catalog.RegisterCategoryValue(ex_.currency_key, "USD");
    catalog.RegisterCategoryValue(ex_.currency_key, "EUR");
    catalog.RegisterCategoryValue(ex_.currency_key, "GBP");
  }
  ExampleGraph ex_;
};

TEST_F(CypherParserTest, Example1TwoHop) {
  ParsedCypher parsed = ParseCypher(
      "MATCH (c1:Customer)-[r1]->(a1:Account)-[r2]->(a2:Account) "
      "WHERE c1.name = 'Alice'",
      ex_.graph.catalog());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.query.num_vertices(), 3);
  EXPECT_EQ(parsed.query.num_edges(), 2);
  EXPECT_EQ(parsed.query.vertex(0).label, ex_.customer_label);
  EXPECT_EQ(parsed.query.edge(0).from, 0);
  EXPECT_EQ(parsed.query.edge(0).to, 1);
  ASSERT_EQ(parsed.query.predicates().size(), 1u);
  EXPECT_EQ(parsed.query.predicates()[0].rhs_const.AsString(), "Alice");
}

TEST_F(CypherParserTest, Example2EdgeLabels) {
  ParsedCypher parsed = ParseCypher(
      "MATCH (c1:Customer)-[r1:O]->(a1)-[r2:W]->(a2) WHERE c1.name = 'Alice' "
      "RETURN COUNT(*)",
      ex_.graph.catalog());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.query.edge(0).label, ex_.owns_label);
  EXPECT_EQ(parsed.query.edge(1).label, ex_.wire_label);
}

TEST_F(CypherParserTest, Example4CurrencyCategory) {
  ParsedCypher parsed = ParseCypher(
      "MATCH (c1:Customer)-[r1:O]->(a1)-[r2:W]->(a2) "
      "WHERE c1.name = 'Alice', r2.currency = USD",
      ex_.graph.catalog());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.query.predicates().size(), 2u);
  const QueryComparison& currency = parsed.query.predicates()[1];
  EXPECT_TRUE(currency.lhs.is_edge);
  EXPECT_EQ(currency.rhs_const.AsInt64(), 0);  // USD
}

TEST_F(CypherParserTest, IdEqualityBindsVertex) {
  // Example 3: WHERE a1.ID = v1 (numeric ids here).
  ParsedCypher parsed = ParseCypher(
      "MATCH (a1:Account)-[r1:W]->(a2:Account) WHERE a1.ID = 0",
      ex_.graph.catalog());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.query.vertex(0).bound, 0u);
  EXPECT_TRUE(parsed.query.predicates().empty());
}

TEST_F(CypherParserTest, BackwardEdges) {
  ParsedCypher parsed = ParseCypher(
      "MATCH (a1:Account)<-[r1:W]-(a2:Account)", ex_.graph.catalog());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  // a2 -> a1 after normalization.
  EXPECT_EQ(parsed.query.edge(0).from, parsed.query.FindVertex("a2"));
  EXPECT_EQ(parsed.query.edge(0).to, parsed.query.FindVertex("a1"));
}

TEST_F(CypherParserTest, SharedVariablesAcrossPatterns) {
  // Example 3's cyclic query: a1-[:W]->a2-[:W]->a3, a3-[:W]->a1.
  ParsedCypher parsed = ParseCypher(
      "MATCH (a1)-[r1:W]->(a2)-[r2:W]->(a3), (a3)-[r3:W]->(a1)",
      ex_.graph.catalog());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.query.num_vertices(), 3);
  EXPECT_EQ(parsed.query.num_edges(), 3);
  EXPECT_EQ(parsed.query.edge(2).from, parsed.query.FindVertex("a3"));
  EXPECT_EQ(parsed.query.edge(2).to, parsed.query.FindVertex("a1"));
}

TEST_F(CypherParserTest, CrossEdgePredicateWithAddend) {
  // Example 7's money-flow conditions.
  ParsedCypher parsed = ParseCypher(
      "MATCH (a1)-[r1]->(a2)-[r2]->(a3) "
      "WHERE r1.date < r2.date AND r2.amount < r1.amount + 50",
      ex_.graph.catalog());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.query.predicates().size(), 2u);
  const QueryComparison& cut = parsed.query.predicates()[1];
  EXPECT_FALSE(cut.rhs_is_const);
  EXPECT_EQ(cut.rhs_addend, 50);
}

TEST_F(CypherParserTest, Errors) {
  EXPECT_FALSE(ParseCypher("SELECT * FROM t", ex_.graph.catalog()).ok());
  EXPECT_FALSE(ParseCypher("MATCH (a:Nonexistent)", ex_.graph.catalog()).ok());
  EXPECT_FALSE(ParseCypher("MATCH (a)-[:NoSuchLabel]->(b)", ex_.graph.catalog()).ok());
  EXPECT_FALSE(
      ParseCypher("MATCH (a)-[r]->(b) WHERE a.nonexistent > 5", ex_.graph.catalog()).ok());
  EXPECT_FALSE(
      ParseCypher("MATCH (a)-[r]->(b) WHERE r.currency = JPY", ex_.graph.catalog()).ok());
}

TEST_F(CypherParserTest, ProjectionList) {
  ParsedCypher parsed = ParseCypher(
      "MATCH (a1:Account)-[r1:W]->(a2:Account) RETURN a1, a2.city, r1.amount, r1.ID",
      ex_.graph.catalog());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.returns.size(), 4u);
  EXPECT_EQ(parsed.returns[0].name, "a1");
  EXPECT_TRUE(parsed.returns[0].ref.is_id);
  EXPECT_FALSE(parsed.returns[0].ref.is_edge);
  EXPECT_EQ(parsed.returns[1].name, "a2.city");
  EXPECT_EQ(parsed.returns[1].ref.key, ex_.city_key);
  EXPECT_EQ(parsed.returns[2].name, "r1.amount");
  EXPECT_TRUE(parsed.returns[2].ref.is_edge);
  EXPECT_EQ(parsed.returns[3].name, "r1.ID");
  EXPECT_TRUE(parsed.returns[3].ref.is_edge);
  EXPECT_TRUE(parsed.returns[3].ref.is_id);
  EXPECT_FALSE(parsed.has_limit);
}

TEST_F(CypherParserTest, LimitClause) {
  ParsedCypher with_return = ParseCypher(
      "MATCH (a1)-[r1:W]->(a2) RETURN a1, a2 LIMIT 25", ex_.graph.catalog());
  ASSERT_TRUE(with_return.ok()) << with_return.error;
  EXPECT_TRUE(with_return.has_limit);
  EXPECT_EQ(with_return.limit, 25u);
  // LIMIT 0 is valid (zero rows); COUNT(*) is an ordinary return item.
  ParsedCypher zero =
      ParseCypher("MATCH (a1)-[r1:W]->(a2) RETURN COUNT(*) LIMIT 0", ex_.graph.catalog());
  ASSERT_TRUE(zero.ok()) << zero.error;
  EXPECT_TRUE(zero.has_limit);
  EXPECT_EQ(zero.limit, 0u);
  ASSERT_EQ(zero.returns.size(), 1u);
  EXPECT_EQ(zero.returns[0].agg, AggFn::kCount);
  EXPECT_TRUE(zero.returns[0].star);
  EXPECT_TRUE(zero.has_aggregate);
  // Malformed limits.
  EXPECT_FALSE(ParseCypher("MATCH (a1)-[r1:W]->(a2) LIMIT x", ex_.graph.catalog()).ok());
  EXPECT_FALSE(ParseCypher("MATCH (a1)-[r1:W]->(a2) LIMIT 1.5", ex_.graph.catalog()).ok());
}

TEST_F(CypherParserTest, OverlongNumericLiteralsAreParseErrorsNotCrashes) {
  // Serving text is untrusted: literals past the integer/double range
  // must produce parse errors, never a thrown std::out_of_range.
  EXPECT_FALSE(ParseCypher("MATCH (a1)-[r1:W]->(a2) LIMIT 99999999999999999999999",
                           ex_.graph.catalog()).ok());
  EXPECT_FALSE(ParseCypher(
      "MATCH (a1)-[r1:W]->(a2) WHERE r1.amount > 99999999999999999999999",
      ex_.graph.catalog()).ok());
  EXPECT_FALSE(ParseCypher(
      "MATCH (a1)-[r1:W]->(a2) WHERE r1.amount > 1.2.3", ex_.graph.catalog()).ok());
  EXPECT_FALSE(ParseCypher(
      "MATCH (a1)-[r1:W]->(a2)-[r2:W]->(a3) "
      "WHERE r1.amount > r2.amount + 99999999999999999999999",
      ex_.graph.catalog()).ok());
  ParsedCypher ok = ParseCypher("MATCH (a1)-[r1:W]->(a2) WHERE r1.amount > 1.5 LIMIT 3",
                                ex_.graph.catalog());
  EXPECT_TRUE(ok.ok()) << ok.error;
}

TEST_F(CypherParserTest, ReturnErrors) {
  // Unknown variable in RETURN (bare and dotted), unknown property.
  ParsedCypher unknown_var =
      ParseCypher("MATCH (a)-[r]->(b) RETURN c", ex_.graph.catalog());
  EXPECT_FALSE(unknown_var.ok());
  EXPECT_NE(unknown_var.error.find("unknown variable c"), std::string::npos)
      << unknown_var.error;
  EXPECT_FALSE(ParseCypher("MATCH (a)-[r]->(b) RETURN c.city", ex_.graph.catalog()).ok());
  EXPECT_FALSE(ParseCypher("MATCH (a)-[r]->(b) RETURN b.nonexistent",
                           ex_.graph.catalog()).ok());
  EXPECT_FALSE(ParseCypher("MATCH (a)-[r]->(b) RETURN", ex_.graph.catalog()).ok());
}

TEST_F(CypherParserTest, ReturnDistinct) {
  ParsedCypher parsed =
      ParseCypher("MATCH (a)-[r]->(b) RETURN DISTINCT b", ex_.graph.catalog());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_TRUE(parsed.distinct);
  ASSERT_EQ(parsed.returns.size(), 1u);

  // DISTINCT is an optional prefix, not a reserved projection name:
  // without it the flag stays clear.
  ParsedCypher plain = ParseCypher("MATCH (a)-[r]->(b) RETURN b", ex_.graph.catalog());
  ASSERT_TRUE(plain.ok()) << plain.error;
  EXPECT_FALSE(plain.distinct);

  // DISTINCT composes with ORDER BY and LIMIT.
  ParsedCypher ordered = ParseCypher(
      "MATCH (a)-[r]->(b) RETURN DISTINCT b ORDER BY b LIMIT 5", ex_.graph.catalog());
  ASSERT_TRUE(ordered.ok()) << ordered.error;
  EXPECT_TRUE(ordered.distinct);
  EXPECT_TRUE(ordered.has_limit);
  EXPECT_EQ(ordered.limit, 5u);

  // DISTINCT + aggregates is rejected with a typed parse error, for
  // COUNT(*) and for value aggregates alike.
  ParsedCypher agg = ParseCypher("MATCH (a)-[r]->(b) RETURN DISTINCT COUNT(*)",
                                 ex_.graph.catalog());
  EXPECT_FALSE(agg.ok());
  EXPECT_NE(agg.error.find("DISTINCT"), std::string::npos) << agg.error;
  ParsedCypher mixed = ParseCypher(
      "MATCH (a)-[r]->(b) RETURN DISTINCT b, SUM(r.amount)", ex_.graph.catalog());
  EXPECT_FALSE(mixed.ok());
  EXPECT_NE(mixed.error.find("DISTINCT"), std::string::npos) << mixed.error;
}

TEST_F(CypherParserTest, Parameters) {
  ParsedCypher parsed = ParseCypher(
      "MATCH (a1:Account)-[r1:W]->(a2:Account) "
      "WHERE a1.ID = $src AND r1.amount > $min RETURN a2 LIMIT 10",
      ex_.graph.catalog());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.params.size(), 2u);
  // $src is an ID pin: no predicate, bound_param marks the vertex.
  EXPECT_EQ(parsed.params[0].name, "src");
  EXPECT_EQ(parsed.params[0].pin_var, 0);
  EXPECT_EQ(parsed.params[0].expected, ValueType::kInt64);
  EXPECT_EQ(parsed.query.vertex(0).bound_param, 0);
  EXPECT_EQ(parsed.query.vertex(0).bound, kInvalidVertex);  // placeholder comes at Prepare
  // $min is a plain predicate parameter with a null constant.
  EXPECT_EQ(parsed.params[1].name, "min");
  EXPECT_EQ(parsed.params[1].pin_var, -1);
  EXPECT_EQ(parsed.params[1].key, ex_.amount_key);
  ASSERT_EQ(parsed.query.predicates().size(), 1u);
  EXPECT_EQ(parsed.query.predicates()[0].rhs_param, 1);
  EXPECT_TRUE(parsed.query.predicates()[0].rhs_const.is_null());
  // Reusing one name with conflicting expected types is a parse error.
  ParsedCypher conflict = ParseCypher(
      "MATCH (c1:Customer)-[r1:W]->(a2) WHERE c1.name = $x AND r1.amount > $x",
      ex_.graph.catalog());
  EXPECT_FALSE(conflict.ok());
  EXPECT_NE(conflict.error.find("conflicting"), std::string::npos) << conflict.error;
  // A bare '$' is not a parameter.
  EXPECT_FALSE(ParseCypher("MATCH (a)-[r]->(b) WHERE a.ID = $", ex_.graph.catalog()).ok());
}

TEST_F(CypherParserTest, AggregatesAndGroupBy) {
  ParsedCypher parsed = ParseCypher(
      "MATCH (a1:Account)-[r1:W]->(a2:Account) "
      "RETURN a2.city, COUNT(*), SUM(r1.amount), AVG(r1.amount), MIN(a1.ID), MAX(r1.amount)",
      ex_.graph.catalog());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.returns.size(), 6u);
  EXPECT_TRUE(parsed.has_aggregate);
  EXPECT_EQ(parsed.returns[0].agg, AggFn::kNone);  // bare item = group key
  EXPECT_EQ(parsed.returns[0].name, "a2.city");
  EXPECT_EQ(parsed.returns[1].agg, AggFn::kCount);
  EXPECT_TRUE(parsed.returns[1].star);
  EXPECT_EQ(parsed.returns[1].name, "COUNT(*)");
  EXPECT_EQ(parsed.returns[2].agg, AggFn::kSum);
  EXPECT_EQ(parsed.returns[2].name, "SUM(r1.amount)");
  EXPECT_TRUE(parsed.returns[2].ref.is_edge);
  EXPECT_EQ(parsed.returns[3].agg, AggFn::kAvg);
  EXPECT_EQ(parsed.returns[4].agg, AggFn::kMin);
  EXPECT_TRUE(parsed.returns[4].ref.is_id);
  EXPECT_EQ(parsed.returns[5].agg, AggFn::kMax);
  // COUNT over a non-numeric argument is fine; SUM is not.
  EXPECT_TRUE(ParseCypher("MATCH (a1:Account)-[r1:W]->(a2) RETURN COUNT(a2.city)",
                          ex_.graph.catalog())
                  .ok());
  ParsedCypher bad_sum = ParseCypher(
      "MATCH (a1:Account)-[r1:W]->(a2) RETURN SUM(a2.city)", ex_.graph.catalog());
  EXPECT_FALSE(bad_sum.ok());
  EXPECT_NE(bad_sum.error.find("int64 or double"), std::string::npos) << bad_sum.error;
  // Only COUNT takes '*'.
  EXPECT_FALSE(
      ParseCypher("MATCH (a1)-[r1:W]->(a2) RETURN SUM(*)", ex_.graph.catalog()).ok());
}

TEST_F(CypherParserTest, OrderByClause) {
  ParsedCypher parsed = ParseCypher(
      "MATCH (a1:Account)-[r1:W]->(a2) "
      "RETURN a2, COUNT(*) ORDER BY COUNT(*) DESC, a2 LIMIT 5",
      ex_.graph.catalog());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.order_by.size(), 2u);
  EXPECT_EQ(parsed.order_by[0].item, 1);
  EXPECT_TRUE(parsed.order_by[0].desc);
  EXPECT_EQ(parsed.order_by[1].item, 0);
  EXPECT_FALSE(parsed.order_by[1].desc);
  EXPECT_TRUE(parsed.has_limit);
  EXPECT_EQ(parsed.limit, 5u);
  // Explicit ASC parses too.
  ParsedCypher asc = ParseCypher(
      "MATCH (a1)-[r1:W]->(a2) RETURN a1, r1.amount ORDER BY r1.amount ASC",
      ex_.graph.catalog());
  ASSERT_TRUE(asc.ok()) << asc.error;
  EXPECT_FALSE(asc.order_by[0].desc);
  EXPECT_EQ(asc.order_by[0].item, 1);
  // ORDER BY keys must be RETURN items.
  ParsedCypher not_returned = ParseCypher(
      "MATCH (a1)-[r1:W]->(a2) RETURN a1 ORDER BY r1.amount", ex_.graph.catalog());
  EXPECT_FALSE(not_returned.ok());
  EXPECT_NE(not_returned.error.find("not a RETURN item"), std::string::npos)
      << not_returned.error;
  // ORDER BY without a projection is meaningless.
  EXPECT_FALSE(
      ParseCypher("MATCH (a1)-[r1:W]->(a2) ORDER BY a1", ex_.graph.catalog()).ok());
  // ORDER without BY.
  EXPECT_FALSE(
      ParseCypher("MATCH (a1)-[r1:W]->(a2) RETURN a1 ORDER a1", ex_.graph.catalog()).ok());
}

TEST_F(CypherParserTest, EndToEndThroughDatabase) {
  label_t wire = ex_.wire_label;
  (void)wire;
  Database db(std::move(ex_.graph));
  db.BuildPrimaryIndexes();
  // All Wire transfers between accounts: 9.
  QueryOutcome wires = db.ExecuteCypher("MATCH (a:Account)-[r:W]->(b:Account) RETURN COUNT(*)");
  ASSERT_TRUE(wires.ok()) << wires.error;
  EXPECT_EQ(wires.count, 9u);
  // Alice's wire destinations via her accounts (Example 2): v1 and v4
  // are Alice's; their Wire out-edges: t4, t17, t20 (v1) and t5, t9,
  // t11 (v4) = 6.
  QueryOutcome alice = db.ExecuteCypher(
      "MATCH (c1:Customer)-[r1:O]->(a1)-[r2:W]->(a2) WHERE c1.name = 'Alice' "
      "RETURN COUNT(*)");
  ASSERT_TRUE(alice.ok()) << alice.error;
  EXPECT_EQ(alice.count, 6u);
  // Parse errors surface cleanly.
  EXPECT_FALSE(db.ExecuteCypher("MATCH garbage").ok());
}

}  // namespace
}  // namespace aplus
