// Parses the openCypher queries that appear verbatim in the paper's
// Examples 1-7 and verifies both the parsed structure and, through the
// Database facade, the counted results on the Figure 1 graph.

#include <gtest/gtest.h>

#include "core/database.h"
#include "datagen/example_graph.h"
#include "query/cypher_parser.h"

namespace aplus {
namespace {

class CypherParserTest : public ::testing::Test {
 protected:
  CypherParserTest() : ex_(BuildExampleGraph()) {
    Catalog& catalog = ex_.graph.catalog();
    catalog.RegisterCategoryValue(ex_.currency_key, "USD");
    catalog.RegisterCategoryValue(ex_.currency_key, "EUR");
    catalog.RegisterCategoryValue(ex_.currency_key, "GBP");
  }
  ExampleGraph ex_;
};

TEST_F(CypherParserTest, Example1TwoHop) {
  ParsedCypher parsed = ParseCypher(
      "MATCH (c1:Customer)-[r1]->(a1:Account)-[r2]->(a2:Account) "
      "WHERE c1.name = 'Alice'",
      ex_.graph.catalog());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.query.num_vertices(), 3);
  EXPECT_EQ(parsed.query.num_edges(), 2);
  EXPECT_EQ(parsed.query.vertex(0).label, ex_.customer_label);
  EXPECT_EQ(parsed.query.edge(0).from, 0);
  EXPECT_EQ(parsed.query.edge(0).to, 1);
  ASSERT_EQ(parsed.query.predicates().size(), 1u);
  EXPECT_EQ(parsed.query.predicates()[0].rhs_const.AsString(), "Alice");
}

TEST_F(CypherParserTest, Example2EdgeLabels) {
  ParsedCypher parsed = ParseCypher(
      "MATCH (c1:Customer)-[r1:O]->(a1)-[r2:W]->(a2) WHERE c1.name = 'Alice' "
      "RETURN COUNT(*)",
      ex_.graph.catalog());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.query.edge(0).label, ex_.owns_label);
  EXPECT_EQ(parsed.query.edge(1).label, ex_.wire_label);
}

TEST_F(CypherParserTest, Example4CurrencyCategory) {
  ParsedCypher parsed = ParseCypher(
      "MATCH (c1:Customer)-[r1:O]->(a1)-[r2:W]->(a2) "
      "WHERE c1.name = 'Alice', r2.currency = USD",
      ex_.graph.catalog());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.query.predicates().size(), 2u);
  const QueryComparison& currency = parsed.query.predicates()[1];
  EXPECT_TRUE(currency.lhs.is_edge);
  EXPECT_EQ(currency.rhs_const.AsInt64(), 0);  // USD
}

TEST_F(CypherParserTest, IdEqualityBindsVertex) {
  // Example 3: WHERE a1.ID = v1 (numeric ids here).
  ParsedCypher parsed = ParseCypher(
      "MATCH (a1:Account)-[r1:W]->(a2:Account) WHERE a1.ID = 0",
      ex_.graph.catalog());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.query.vertex(0).bound, 0u);
  EXPECT_TRUE(parsed.query.predicates().empty());
}

TEST_F(CypherParserTest, BackwardEdges) {
  ParsedCypher parsed = ParseCypher(
      "MATCH (a1:Account)<-[r1:W]-(a2:Account)", ex_.graph.catalog());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  // a2 -> a1 after normalization.
  EXPECT_EQ(parsed.query.edge(0).from, parsed.query.FindVertex("a2"));
  EXPECT_EQ(parsed.query.edge(0).to, parsed.query.FindVertex("a1"));
}

TEST_F(CypherParserTest, SharedVariablesAcrossPatterns) {
  // Example 3's cyclic query: a1-[:W]->a2-[:W]->a3, a3-[:W]->a1.
  ParsedCypher parsed = ParseCypher(
      "MATCH (a1)-[r1:W]->(a2)-[r2:W]->(a3), (a3)-[r3:W]->(a1)",
      ex_.graph.catalog());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.query.num_vertices(), 3);
  EXPECT_EQ(parsed.query.num_edges(), 3);
  EXPECT_EQ(parsed.query.edge(2).from, parsed.query.FindVertex("a3"));
  EXPECT_EQ(parsed.query.edge(2).to, parsed.query.FindVertex("a1"));
}

TEST_F(CypherParserTest, CrossEdgePredicateWithAddend) {
  // Example 7's money-flow conditions.
  ParsedCypher parsed = ParseCypher(
      "MATCH (a1)-[r1]->(a2)-[r2]->(a3) "
      "WHERE r1.date < r2.date AND r2.amount < r1.amount + 50",
      ex_.graph.catalog());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.query.predicates().size(), 2u);
  const QueryComparison& cut = parsed.query.predicates()[1];
  EXPECT_FALSE(cut.rhs_is_const);
  EXPECT_EQ(cut.rhs_addend, 50);
}

TEST_F(CypherParserTest, Errors) {
  EXPECT_FALSE(ParseCypher("SELECT * FROM t", ex_.graph.catalog()).ok());
  EXPECT_FALSE(ParseCypher("MATCH (a:Nonexistent)", ex_.graph.catalog()).ok());
  EXPECT_FALSE(ParseCypher("MATCH (a)-[:NoSuchLabel]->(b)", ex_.graph.catalog()).ok());
  EXPECT_FALSE(
      ParseCypher("MATCH (a)-[r]->(b) WHERE a.nonexistent > 5", ex_.graph.catalog()).ok());
  EXPECT_FALSE(
      ParseCypher("MATCH (a)-[r]->(b) WHERE r.currency = JPY", ex_.graph.catalog()).ok());
  EXPECT_FALSE(ParseCypher("MATCH (a)-[r]->(b) RETURN b", ex_.graph.catalog()).ok());
}

TEST_F(CypherParserTest, EndToEndThroughDatabase) {
  label_t wire = ex_.wire_label;
  (void)wire;
  Database db(std::move(ex_.graph));
  db.BuildPrimaryIndexes();
  // All Wire transfers between accounts: 9.
  Database::CypherResult wires =
      db.RunCypher("MATCH (a:Account)-[r:W]->(b:Account) RETURN COUNT(*)");
  ASSERT_TRUE(wires.ok) << wires.error;
  EXPECT_EQ(wires.result.count, 9u);
  // Alice's wire destinations via her accounts (Example 2): v1 and v4
  // are Alice's; their Wire out-edges: t4, t17, t20 (v1) and t5, t9,
  // t11 (v4) = 6.
  Database::CypherResult alice = db.RunCypher(
      "MATCH (c1:Customer)-[r1:O]->(a1)-[r2:W]->(a2) WHERE c1.name = 'Alice' "
      "RETURN COUNT(*)");
  ASSERT_TRUE(alice.ok) << alice.error;
  EXPECT_EQ(alice.result.count, 6u);
  // Parse errors surface cleanly.
  EXPECT_FALSE(db.RunCypher("MATCH garbage").ok);
}

}  // namespace
}  // namespace aplus
