// End-to-end tests on generated datasets: every query is evaluated under
// several index configurations (the paper's D / Ds / Dp / D+VPc /
// D+VPc+EPc) and against the baseline engines; all must agree on counts.

#include <gtest/gtest.h>

#include "baseline/flat_adj_engine.h"
#include "baseline/linked_list_engine.h"
#include "core/database.h"
#include "datagen/financial_props.h"
#include "datagen/label_assigner.h"
#include "datagen/power_law_generator.h"

namespace aplus {
namespace {

Graph MakeLabelledGraph(uint32_t vlabels, uint32_t elabels) {
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 1500;
  params.avg_degree = 5.0;
  params.seed = 31;
  GeneratePowerLawGraph(params, &graph);
  AssignRandomLabels(vlabels, elabels, 32, &graph);
  return graph;
}

TEST(IntegrationTest, ConfigsAgreeOnLabelledSubgraphQueries) {
  Graph graph = MakeLabelledGraph(3, 2);
  label_t vl0 = graph.catalog().FindVertexLabel("VL0");
  label_t vl1 = graph.catalog().FindVertexLabel("VL1");
  label_t el0 = graph.catalog().FindEdgeLabel("EL0");
  label_t el1 = graph.catalog().FindEdgeLabel("EL1");
  Database db(std::move(graph));

  // Three queries: labelled path, triangle, diamond-ish.
  std::vector<QueryGraph> queries;
  {
    QueryGraph q;
    int a = q.AddVertex("a", vl0);
    int b = q.AddVertex("b", vl1);
    int c = q.AddVertex("c", vl0);
    q.AddEdge(a, b, el0);
    q.AddEdge(b, c, el1);
    queries.push_back(std::move(q));
  }
  {
    QueryGraph q;
    int a = q.AddVertex("a", vl0);
    int b = q.AddVertex("b");
    int c = q.AddVertex("c");
    q.AddEdge(a, b, el0);
    q.AddEdge(b, c, el0);
    q.AddEdge(a, c, el1);
    queries.push_back(std::move(q));
  }
  {
    QueryGraph q;
    int a = q.AddVertex("a");
    int b = q.AddVertex("b", vl1);
    int c = q.AddVertex("c", vl1);
    int d = q.AddVertex("d");
    q.AddEdge(a, b, el0);
    q.AddEdge(a, c, el0);
    q.AddEdge(b, d, el1);
    q.AddEdge(c, d, el1);
    queries.push_back(std::move(q));
  }

  // Config D.
  db.BuildPrimaryIndexes(IndexConfig::Default());
  std::vector<uint64_t> counts_d;
  for (const QueryGraph& q : queries) counts_d.push_back(db.Execute(q).count);

  // Config Ds: sort by neighbour label then ID.
  IndexConfig ds = IndexConfig::Default();
  ds.sorts.clear();
  ds.sorts.push_back({SortSource::kNbrLabel, kInvalidPropKey});
  ds.sorts.push_back({SortSource::kNbrId, kInvalidPropKey});
  db.BuildPrimaryIndexes(ds);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(db.Execute(queries[i]).count, counts_d[i]) << "Ds query " << i;
  }

  // Config Dp: add neighbour-label partitioning.
  IndexConfig dp = IndexConfig::Default();
  dp.partitions.push_back({PartitionSource::kNbrLabel, kInvalidPropKey});
  db.BuildPrimaryIndexes(dp);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(db.Execute(queries[i]).count, counts_d[i]) << "Dp query " << i;
  }

  // Baselines agree too (built over the moved-into graph).
  LinkedListEngine ll(&db.graph());
  FlatAdjEngine flat(&db.graph());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(ll.CountMatches(queries[i]), counts_d[i]) << "neo4j-like query " << i;
    EXPECT_EQ(flat.CountMatches(queries[i]), counts_d[i]) << "tigergraph-like query " << i;
  }
}

TEST(IntegrationTest, FraudConfigsAgree) {
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 1000;
  params.avg_degree = 6.0;
  params.seed = 77;
  GeneratePowerLawGraph(params, &graph);
  FinancialPropKeys keys = AddFinancialProperties(78, &graph, 15);
  Database db(std::move(graph));
  db.BuildPrimaryIndexes();

  // MF1-style square with city equality: a1->a2, a1<-a4 (BW), a2->a3,
  // a4<-a3 with a2.city = a4.city.
  QueryGraph q;
  int a1 = q.AddVertex("a1");
  int a2 = q.AddVertex("a2");
  int a3 = q.AddVertex("a3");
  int a4 = q.AddVertex("a4");
  q.AddEdge(a1, a2, kInvalidLabel, "e1");
  q.AddEdge(a2, a3, kInvalidLabel, "e2");
  q.AddEdge(a3, a4, kInvalidLabel, "e3");
  q.AddEdge(a4, a1, kInvalidLabel, "e4");
  QueryComparison eq;
  eq.lhs = QueryPropRef{a2, false, keys.city, false};
  eq.op = CmpOp::kEq;
  eq.rhs_is_const = false;
  eq.rhs_ref = QueryPropRef{a4, false, keys.city, false};
  q.AddPredicate(eq);
  // Restrict a1 to keep runtime small.
  QueryComparison a1_small;
  a1_small.lhs = QueryPropRef{a1, false, kInvalidPropKey, true};
  a1_small.op = CmpOp::kLt;
  a1_small.rhs_const = Value::Int64(50);
  q.AddPredicate(a1_small);

  uint64_t base = db.Execute(q).count;

  // Add VPc (city-sorted, both directions): counts must not change.
  IndexConfig city_config = IndexConfig::Default();
  city_config.sorts.clear();
  city_config.sorts.push_back({SortSource::kNbrProp, keys.city});
  db.CreateVpIndex("VPc", Predicate(), city_config, Direction::kFwd);
  db.CreateVpIndex("VPc", Predicate(), city_config, Direction::kBwd);
  EXPECT_EQ(db.Execute(q).count, base);

  LinkedListEngine ll(&db.graph());
  EXPECT_EQ(ll.CountMatches(q), base);
}

TEST(IntegrationTest, MoneyFlowWithEpIndexAgrees) {
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 600;
  params.avg_degree = 6.0;
  params.seed = 99;
  GeneratePowerLawGraph(params, &graph);
  FinancialPropKeys keys = AddFinancialProperties(11, &graph, 10);
  Database db(std::move(graph));
  db.BuildPrimaryIndexes();

  // 3-step flow: a1->a2->a3 with Pf(e1,e2), a1 restricted.
  QueryGraph q;
  int a1 = q.AddVertex("a1");
  int a2 = q.AddVertex("a2");
  int a3 = q.AddVertex("a3");
  q.AddEdge(a1, a2, kInvalidLabel, "e1");
  q.AddEdge(a2, a3, kInvalidLabel, "e2");
  QueryComparison date_pred;
  date_pred.lhs = QueryPropRef{0, true, keys.date, false};
  date_pred.op = CmpOp::kLt;
  date_pred.rhs_is_const = false;
  date_pred.rhs_ref = QueryPropRef{1, true, keys.date, false};
  q.AddPredicate(date_pred);
  QueryComparison amt_pred;
  amt_pred.lhs = QueryPropRef{0, true, keys.amount, false};
  amt_pred.op = CmpOp::kGt;
  amt_pred.rhs_is_const = false;
  amt_pred.rhs_ref = QueryPropRef{1, true, keys.amount, false};
  q.AddPredicate(amt_pred);
  QueryComparison a1_small;
  a1_small.lhs = QueryPropRef{a1, false, kInvalidPropKey, true};
  a1_small.op = CmpOp::kLt;
  a1_small.rhs_const = Value::Int64(100);
  q.AddPredicate(a1_small);

  uint64_t base = db.Execute(q).count;

  Predicate flow;
  flow.AddRef(PropRef{PropSite::kBoundEdge, keys.date, false, false}, CmpOp::kLt,
              PropRef{PropSite::kAdjEdge, keys.date, false, false});
  flow.AddRef(PropRef{PropSite::kBoundEdge, keys.amount, false, false}, CmpOp::kGt,
              PropRef{PropSite::kAdjEdge, keys.amount, false, false});
  db.CreateEpIndex("MoneyFlow", EpKind::kDstFwd, flow, IndexConfig::Default());
  EXPECT_EQ(db.Execute(q).count, base);

  FlatAdjEngine flat(&db.graph());
  EXPECT_EQ(flat.CountMatches(q), base);
}

}  // namespace
}  // namespace aplus
