// Serving-layer API tests: prepared queries with $param binding,
// projected row streaming through RowBatch consumers, LIMIT semantics
// under serial and morsel-parallel execution, plan-cache behaviour, and
// the QueryOutcome error contract. Row-level correctness is checked
// against a BaselineMatcher-derived oracle (binary-join backtracking
// over the flat-adjacency engine — an independent implementation).

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "baseline/flat_adj_engine.h"
#include "baseline/matcher.h"
#include "core/database.h"
#include "datagen/power_law_generator.h"
#include "util/rng.h"

namespace aplus {
namespace {

// Collects every cell of every delivered batch. Mutex-guarded so the
// same collector works under parallel execution (OnBatch fires
// concurrently from the workers there).
struct RowCollector : RowConsumer {
  std::mutex mu;
  std::vector<std::vector<Value>> rows;
  void OnBatch(const RowBatch& batch) override {
    std::lock_guard<std::mutex> lock(mu);
    for (uint32_t r = 0; r < batch.num_rows(); ++r) {
      std::vector<Value> row;
      for (size_t c = 0; c < batch.num_columns(); ++c) row.push_back(batch.Cell(c, r));
      rows.push_back(std::move(row));
    }
  }
};

// Thread-safe row counter for parallel executions.
struct RowCounter : RowConsumer {
  std::atomic<uint64_t> rows{0};
  std::atomic<uint64_t> batches{0};
  void OnBatch(const RowBatch& batch) override {
    rows.fetch_add(batch.num_rows(), std::memory_order_relaxed);
    batches.fetch_add(1, std::memory_order_relaxed);
  }
};

class ServingApiTest : public ::testing::Test {
 protected:
  ServingApiTest() {
    Graph graph;
    PowerLawParams params;
    params.num_vertices = 600;
    params.avg_degree = 5.0;
    params.seed = 17;
    GeneratePowerLawGraph(params, &graph);
    amt_key_ = graph.AddEdgeProperty("amt", ValueType::kInt64);
    cur_key_ = graph.AddEdgeProperty("cur", ValueType::kCategory, /*domain_size=*/3);
    graph.catalog().RegisterCategoryValue(cur_key_, "USD");
    graph.catalog().RegisterCategoryValue(cur_key_, "EUR");
    graph.catalog().RegisterCategoryValue(cur_key_, "GBP");
    tag_key_ = graph.AddVertexProperty("tag", ValueType::kString);
    PropertyColumn* amt = graph.edge_props().mutable_column(amt_key_);
    PropertyColumn* cur = graph.edge_props().mutable_column(cur_key_);
    Rng rng(23);
    for (edge_id_t e = 0; e < graph.num_edges(); ++e) {
      amt->SetInt64(e, static_cast<int64_t>(rng.NextBounded(1000)));
      cur->SetCategory(e, static_cast<category_t>(rng.NextBounded(3)));
    }
    PropertyColumn* tag = graph.vertex_props().mutable_column(tag_key_);
    for (vertex_id_t v = 0; v < graph.num_vertices(); ++v) {
      tag->SetString(v, "tag_" + std::to_string(v % 7));
    }
    db_ = std::make_unique<Database>(std::move(graph));
    db_->BuildPrimaryIndexes();
    elabel_ = db_->graph().catalog().FindEdgeLabel("E");
    engine_ = std::make_unique<FlatAdjEngine>(&db_->graph());
  }

  // The 2-hop pattern (a)-[r1:E]->(b)-[r2:E]->(c) with `a` pinned, for
  // the oracle side.
  QueryGraph TwoHop(vertex_id_t src) const {
    QueryGraph q;
    int a = q.AddVertex("a", kInvalidLabel, src);
    int b = q.AddVertex("b");
    int c = q.AddVertex("c");
    q.AddEdge(a, b, elabel_, "r1");
    q.AddEdge(b, c, elabel_, "r2");
    return q;
  }

  // Oracle rows (b, c, r2.amt) of the pinned 2-hop, independently
  // enumerated by the baseline matcher.
  std::vector<std::array<int64_t, 3>> OracleTwoHopRows(vertex_id_t src) const {
    QueryGraph q = TwoHop(src);
    const PropertyColumn* amt = db_->graph().edge_props().column(amt_key_);
    std::vector<std::array<int64_t, 3>> rows;
    BaselineMatcher<FlatAdjEngine> matcher(engine_.get(), &db_->graph(), &q);
    matcher.Enumerate([&](const MatchState& m) {
      rows.push_back({static_cast<int64_t>(m.v[1]), static_cast<int64_t>(m.v[2]),
                      amt->GetInt64(m.e[1])});
    });
    return rows;
  }

  static std::vector<std::array<int64_t, 3>> ToTriples(const RowCollector& rc) {
    std::vector<std::array<int64_t, 3>> rows;
    for (const auto& row : rc.rows) {
      rows.push_back({row[0].AsInt64(), row[1].AsInt64(), row[2].AsInt64()});
    }
    return rows;
  }

  prop_key_t amt_key_ = kInvalidPropKey;
  prop_key_t cur_key_ = kInvalidPropKey;
  prop_key_t tag_key_ = kInvalidPropKey;
  label_t elabel_ = kInvalidLabel;
  std::unique_ptr<Database> db_;
  std::unique_ptr<FlatAdjEngine> engine_;
};

constexpr const char* kTwoHopText =
    "MATCH (a)-[r1:E]->(b)-[r2:E]->(c) WHERE a.ID = $src RETURN b, c, r2.amt";

TEST_F(ServingApiTest, PreparedTwoHopParamBindMatchesOracle) {
  Session session(db_.get());
  PreparedQuery* prepared = session.Prepare(kTwoHopText);
  ASSERT_TRUE(prepared->ok()) << prepared->error();
  EXPECT_EQ(prepared->num_params(), 1u);
  ASSERT_EQ(prepared->columns().size(), 3u);
  EXPECT_EQ(prepared->columns()[0].name, "b");
  EXPECT_EQ(prepared->columns()[2].name, "r2.amt");

  uint64_t nonzero = 0;
  for (vertex_id_t src : {0u, 1u, 7u, 42u, 131u, 599u}) {
    ASSERT_TRUE(prepared->Bind("src", Value::Int64(src))) << prepared->bind_error();
    RowCollector rc;
    QueryOutcome out = prepared->Execute(&rc);
    ASSERT_TRUE(out.ok()) << out.error;
    std::vector<std::array<int64_t, 3>> got = ToTriples(rc);
    std::vector<std::array<int64_t, 3>> want = OracleTwoHopRows(src);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "src=" << src;
    EXPECT_EQ(out.rows, want.size());
    EXPECT_EQ(out.count, want.size());
    if (!want.empty()) ++nonzero;
  }
  EXPECT_GT(nonzero, 0u) << "degenerate workload: every tested source had zero 2-hops";

  // Same normalized text → cache hit, same PreparedQuery, no re-plan.
  PreparedQuery* again = session.Prepare(
      "MATCH (a)-[r1:E]->(b)-[r2:E]->(c)\n  WHERE a.ID = $src\n  RETURN b, c, r2.amt");
  EXPECT_EQ(again, prepared);
  EXPECT_EQ(session.cache_hits(), 1u);
  EXPECT_EQ(session.cache_misses(), 1u);
}

TEST_F(ServingApiTest, RebindAfterParallelExecuteSeesNewValue) {
  // Replicas created by a parallel Execute must be patched by later
  // Binds (the slot set is re-collected when the pipeline count grows).
  Session session(db_.get());
  PreparedQuery* prepared = session.Prepare(kTwoHopText);
  ASSERT_TRUE(prepared->ok()) << prepared->error();
  auto rows_for = [&](vertex_id_t src, int threads) {
    EXPECT_TRUE(prepared->Bind("src", Value::Int64(src)));
    RowCollector rc;
    QueryOutcome out = prepared->Execute(&rc, threads);
    EXPECT_TRUE(out.ok()) << out.error;
    auto got = ToTriples(rc);
    std::sort(got.begin(), got.end());
    return got;
  };
  for (vertex_id_t src : {3u, 99u, 250u}) {
    auto want = OracleTwoHopRows(src);
    std::sort(want.begin(), want.end());
    EXPECT_EQ(rows_for(src, 4), want) << "parallel, src=" << src;
    EXPECT_EQ(rows_for(src, 1), want) << "serial, src=" << src;
  }
}

TEST_F(ServingApiTest, LimitStopsEarlySerialAndParallel) {
  // One-hop enumeration: total matches = number of E edges.
  Session session(db_.get());
  uint64_t total = db_->graph().num_edges();
  const std::string base = "MATCH (a)-[r:E]->(b) RETURN a, b LIMIT ";
  for (uint64_t limit :
       std::vector<uint64_t>{0, 1, 100, total - 1, total, total + 500}) {
    std::string text = base + std::to_string(limit);
    PreparedQuery* prepared = session.Prepare(text);
    ASSERT_TRUE(prepared->ok()) << prepared->error();
    uint64_t want = std::min(limit, total);
    for (int threads : {1, 4}) {
      RowCounter rc;
      QueryOutcome out = prepared->Execute(&rc, threads);
      ASSERT_TRUE(out.ok()) << out.error;
      EXPECT_EQ(out.rows, want) << "limit=" << limit << " threads=" << threads;
      EXPECT_EQ(out.count, want) << "limit=" << limit << " threads=" << threads;
      EXPECT_EQ(rc.rows.load(), want) << "limit=" << limit << " threads=" << threads;
    }
  }
}

TEST_F(ServingApiTest, CountStarIsTheDegenerateAggregate) {
  // A bare RETURN COUNT(*) (no grouping, no ordering) is pushed down
  // onto the counting sink: the plan materializes no rows at all
  // ("ProjectSink (count)", not a GROUP AGGREGATE stage) and Execute
  // synthesizes the single output row from the match count. A bare
  // MATCH (no RETURN) stays the same counting projection with rows == 0.
  Session session(db_.get());
  RowCollector rc;
  QueryOutcome out =
      session.Execute("MATCH (a)-[r1:E]->(b)-[r2:E]->(c) RETURN COUNT(*)", &rc);
  ASSERT_TRUE(out.ok()) << out.error;
  EXPECT_EQ(out.rows, 1u);
  ASSERT_EQ(rc.rows.size(), 1u);
  EXPECT_EQ(static_cast<uint64_t>(rc.rows[0][0].AsInt64()), out.count);
  EXPECT_FALSE(out.plan.empty());
  EXPECT_NE(out.plan.find("ProjectSink (count)"), std::string::npos) << out.plan;
  EXPECT_EQ(out.plan.find("GROUP AGGREGATE"), std::string::npos) << out.plan;
  PreparedQuery* prepared =
      session.Prepare("MATCH (a)-[r1:E]->(b)-[r2:E]->(c) RETURN COUNT(*)");
  ASSERT_TRUE(prepared->ok()) << prepared->error();
  EXPECT_TRUE(prepared->count_star_only());
  EXPECT_FALSE(prepared->has_stages());
  ASSERT_EQ(prepared->columns().size(), 1u);
  EXPECT_EQ(prepared->columns()[0].type, ValueType::kInt64);
  QueryGraph q;
  int a = q.AddVertex("a");
  int b = q.AddVertex("b");
  int c = q.AddVertex("c");
  q.AddEdge(a, b, elabel_, "r1");
  q.AddEdge(b, c, elabel_, "r2");
  QueryOutcome programmatic = db_->Execute(q);
  ASSERT_TRUE(programmatic.ok()) << programmatic.error;
  EXPECT_EQ(out.count, programmatic.count);
  QueryOutcome bare = session.Execute("MATCH (a)-[r1:E]->(b)-[r2:E]->(c)");
  ASSERT_TRUE(bare.ok()) << bare.error;
  EXPECT_EQ(bare.rows, 0u);
  EXPECT_EQ(bare.count, programmatic.count);
  // LIMIT under aggregation caps the output rows (here: the single
  // aggregate row), not the match enumeration.
  QueryOutcome capped = session.Execute("MATCH (a)-[r:E]->(b) RETURN COUNT(*) LIMIT 10");
  ASSERT_TRUE(capped.ok()) << capped.error;
  EXPECT_EQ(capped.count, db_->graph().num_edges());
  EXPECT_EQ(capped.rows, 1u);
  QueryOutcome zero = session.Execute("MATCH (a)-[r:E]->(b) RETURN COUNT(*) LIMIT 0");
  ASSERT_TRUE(zero.ok()) << zero.error;
  EXPECT_EQ(zero.rows, 0u);
}

TEST_F(ServingApiTest, GroupByMemoryCapReturnsResourceExhausted) {
  // APLUS_GROUPBY_MEM_CAP bounds the grouped-aggregate arena: crossing
  // it aborts the execution cleanly with kResourceExhausted — no rows
  // delivered, no crash — and the knob is re-read on every Execute.
  Session session(db_.get());
  const std::string text = "MATCH (a)-[r:E]->(b) RETURN a, COUNT(*)";
  ::setenv("APLUS_GROUPBY_MEM_CAP", "256", 1);
  RowCollector rc;
  QueryOutcome out = session.Execute(text, &rc);
  ::unsetenv("APLUS_GROUPBY_MEM_CAP");
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status, QueryOutcome::Status::kResourceExhausted);
  EXPECT_STREQ(ToString(out.status), "RESOURCE_EXHAUSTED");
  EXPECT_NE(out.error.find("APLUS_GROUPBY_MEM_CAP"), std::string::npos) << out.error;
  EXPECT_EQ(out.rows, 0u);
  EXPECT_TRUE(rc.rows.empty());
  // With the knob unset the same cached plan runs to completion.
  RowCollector rc2;
  QueryOutcome ok = session.Execute(text, &rc2);
  ASSERT_TRUE(ok.ok()) << ok.error;
  EXPECT_GT(ok.rows, 0u);
  EXPECT_EQ(ok.rows, rc2.rows.size());
  // A generous cap never triggers, serial or parallel.
  ::setenv("APLUS_GROUPBY_MEM_CAP", "104857600", 1);
  for (int threads : {1, 4}) {
    RowCollector rc3;
    PreparedQuery* prepared = session.Prepare(text);
    ASSERT_TRUE(prepared->ok()) << prepared->error();
    QueryOutcome big = prepared->Execute(&rc3, threads);
    ASSERT_TRUE(big.ok()) << big.error;
    EXPECT_EQ(rc3.rows.size(), rc2.rows.size()) << "threads=" << threads;
  }
  ::unsetenv("APLUS_GROUPBY_MEM_CAP");
}

TEST_F(ServingApiTest, GroupedAggregateOrderByLimitEndToEnd) {
  // Per-source rollup with a deterministic top-k: group by a, order by
  // COUNT(*) DESC (ties break on the remaining column, a, ascending).
  Session session(db_.get());
  RowCollector rc;
  QueryOutcome out = session.Execute(
      "MATCH (a)-[r:E]->(b) RETURN a, COUNT(*), SUM(r.amt) "
      "ORDER BY COUNT(*) DESC, a LIMIT 10",
      &rc);
  ASSERT_TRUE(out.ok()) << out.error;
  EXPECT_EQ(out.count, db_->graph().num_edges());
  EXPECT_EQ(out.rows, rc.rows.size());
  EXPECT_LE(rc.rows.size(), 10u);
  // Reference rollup straight off the graph.
  const Graph& g = db_->graph();
  const PropertyColumn* amt = g.edge_props().column(amt_key_);
  std::map<int64_t, std::pair<int64_t, int64_t>> ref;  // a -> (count, sum)
  for (edge_id_t e = 0; e < g.num_edges(); ++e) {
    auto& acc = ref[static_cast<int64_t>(g.edge_src(e))];
    acc.first++;
    if (!amt->IsNull(e)) acc.second += amt->GetInt64(e);
  }
  std::vector<std::array<int64_t, 3>> want;
  for (const auto& [src, acc] : ref) want.push_back({src, acc.first, acc.second});
  std::sort(want.begin(), want.end(), [](const auto& x, const auto& y) {
    if (x[1] != y[1]) return x[1] > y[1];  // COUNT(*) DESC
    return x[0] < y[0];                    // a ASC
  });
  want.resize(std::min<size_t>(want.size(), 10));
  ASSERT_EQ(rc.rows.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(rc.rows[i][0].AsInt64(), want[i][0]) << "row " << i;
    EXPECT_EQ(rc.rows[i][1].AsInt64(), want[i][1]) << "row " << i;
    EXPECT_EQ(rc.rows[i][2].AsInt64(), want[i][2]) << "row " << i;
  }
  // The plan text explains the whole sink chain.
  EXPECT_NE(out.plan.find("GROUP AGGREGATE"), std::string::npos) << out.plan;
  EXPECT_NE(out.plan.find("ORDER BY"), std::string::npos) << out.plan;
  EXPECT_NE(out.plan.find("LIMIT 10"), std::string::npos) << out.plan;
}

TEST_F(ServingApiTest, ParamRangeBoundFoldsIntoSortedIndex) {
  // The MagicRecs pattern: a VP index sorted on the range property lets
  // a $param window fold into the descriptor's BoundedRange at Bind time
  // (sorted-prefix binary search) instead of staying a residual filter.
  // Some amt cells are nulled to pin down the null-tail semantics: null
  // sort keys order last, and a range predicate must reject them in
  // BOTH directions — a lower-bound-only fold (`amt > $min`) must stop
  // before the null tail, exactly like the residual filter it replaces.
  {
    PropertyColumn* amt = db_->graph().edge_props().mutable_column(amt_key_);
    for (edge_id_t e = 0; e < db_->graph().num_edges(); e += 4) amt->SetNull(e);
  }
  IndexConfig amt_sorted = IndexConfig::Default();
  amt_sorted.sorts.clear();
  amt_sorted.sorts.push_back({SortSource::kEdgeProp, amt_key_});
  Predicate all;
  db_->CreateVpIndex("AmtSorted", all, amt_sorted, Direction::kFwd);
  Session session(db_.get());
  const Graph& g = db_->graph();
  const PropertyColumn* amt = g.edge_props().column(amt_key_);
  struct Dir {
    const char* text;
    bool upper;  // true: amt < $x, false: amt > $x
  };
  for (const Dir& dir :
       {Dir{"MATCH (a)-[r:E]->(b) WHERE a.ID = $src AND r.amt < $x RETURN COUNT(*)", true},
        Dir{"MATCH (a)-[r:E]->(b) WHERE a.ID = $src AND r.amt > $x RETURN COUNT(*)",
            false}}) {
    PreparedQuery* prepared = session.Prepare(dir.text);
    ASSERT_TRUE(prepared->ok()) << prepared->error();
    // Folded: the window is a descriptor bound, not a residual filter.
    EXPECT_EQ(prepared->plan_text().find("FILTER"), std::string::npos)
        << prepared->plan_text();
    for (vertex_id_t src : {0u, 5u, 42u, 300u}) {
      for (int64_t x : {0, 50, 500, 2000}) {
        ASSERT_TRUE(prepared->Bind("src", Value::Int64(src))) << prepared->bind_error();
        ASSERT_TRUE(prepared->Bind("x", Value::Int64(x))) << prepared->bind_error();
        uint64_t want = 0;
        for (edge_id_t e = 0; e < g.num_edges(); ++e) {
          if (g.edge_src(e) != src || amt->IsNull(e)) continue;
          if (dir.upper ? amt->GetInt64(e) < x : amt->GetInt64(e) > x) ++want;
        }
        for (int threads : {1, 4}) {
          QueryOutcome out = prepared->Execute(nullptr, threads);
          ASSERT_TRUE(out.ok()) << out.error;
          EXPECT_EQ(out.count, want) << dir.text << " src=" << src << " x=" << x
                                     << " threads=" << threads;
        }
      }
    }
  }
}

TEST_F(ServingApiTest, ProjectedPropertyTypesRoundTrip) {
  // String + category + id projections against direct property reads.
  Session session(db_.get());
  PreparedQuery* prepared = session.Prepare(
      "MATCH (a)-[r:E]->(b) WHERE a.ID = $src RETURN a.ID, b.tag, r.cur, r.amt");
  ASSERT_TRUE(prepared->ok()) << prepared->error();
  ASSERT_TRUE(prepared->Bind("src", Value::Int64(5)));
  RowCollector rc;
  QueryOutcome out = prepared->Execute(&rc);
  ASSERT_TRUE(out.ok()) << out.error;
  ASSERT_GT(rc.rows.size(), 0u);
  for (const auto& row : rc.rows) {
    EXPECT_EQ(row[0].AsInt64(), 5);
    // b.tag is some vertex's tag string; every tag has the tag_ prefix.
    EXPECT_EQ(row[1].AsString().substr(0, 4), "tag_");
    EXPECT_GE(row[2].AsInt64(), 0);
    EXPECT_LT(row[2].AsInt64(), 3);
  }
}

TEST_F(ServingApiTest, CategoryParamBindsByNameAndCode) {
  Session session(db_.get());
  PreparedQuery* prepared = session.Prepare(
      "MATCH (a)-[r:E]->(b) WHERE r.cur = $c RETURN COUNT(*)");
  ASSERT_TRUE(prepared->ok()) << prepared->error();
  ASSERT_TRUE(prepared->Bind("c", Value::String("EUR"))) << prepared->bind_error();
  QueryOutcome by_name = prepared->Execute();
  ASSERT_TRUE(by_name.ok()) << by_name.error;
  ASSERT_TRUE(prepared->Bind("c", Value::Int64(1)));  // EUR's code
  QueryOutcome by_code = prepared->Execute();
  ASSERT_TRUE(by_code.ok()) << by_code.error;
  EXPECT_EQ(by_name.count, by_code.count);
  EXPECT_GT(by_name.count, 0u);
  // Unknown category names and out-of-domain codes are bind errors.
  EXPECT_FALSE(prepared->Bind("c", Value::String("JPY")));
  EXPECT_FALSE(prepared->Bind("c", Value::Int64(99)));
}

TEST_F(ServingApiTest, BindAndExecuteErrorPaths) {
  Session session(db_.get());
  PreparedQuery* prepared = session.Prepare(kTwoHopText);
  ASSERT_TRUE(prepared->ok()) << prepared->error();
  // Unbound parameter at execute time.
  QueryOutcome unbound = prepared->Execute();
  EXPECT_EQ(unbound.status, QueryOutcome::Status::kBindError);
  EXPECT_NE(unbound.error.find("$src"), std::string::npos) << unbound.error;
  EXPECT_EQ(unbound.count, 0u);
  // Type-mismatched bind: $src compares against .ID (int64).
  EXPECT_FALSE(prepared->Bind("src", Value::String("zero")));
  EXPECT_NE(prepared->bind_error().find("type mismatch"), std::string::npos)
      << prepared->bind_error();
  // Unknown parameter name.
  EXPECT_FALSE(prepared->Bind("nope", Value::Int64(1)));
  // A failed bind leaves the query unexecutable until a good bind lands.
  EXPECT_EQ(prepared->Execute().status, QueryOutcome::Status::kBindError);
  ASSERT_TRUE(prepared->Bind("src", Value::Int64(3)));
  EXPECT_TRUE(prepared->Execute().ok());
  // Parse errors report kParseError through the one-shot path, with the
  // message in `error` — never smuggled into the plan text.
  QueryOutcome bad = session.Execute("MATCH garbage");
  EXPECT_EQ(bad.status, QueryOutcome::Status::kParseError);
  EXPECT_FALSE(bad.error.empty());
  EXPECT_TRUE(bad.plan.empty());
}

TEST_F(ServingApiTest, DdlInvalidatesPreparedQueriesAndCacheReprepares) {
  Session session(db_.get());
  PreparedQuery* prepared = session.Prepare(kTwoHopText);
  ASSERT_TRUE(prepared->ok()) << prepared->error();
  ASSERT_TRUE(prepared->Bind("src", Value::Int64(7)));
  uint64_t before = prepared->Execute().count;
  // A RECONFIGURE-equivalent rebuild bumps the store version: the held
  // pointer goes stale instead of reading freed index memory.
  db_->BuildPrimaryIndexes();
  EXPECT_FALSE(prepared->current());
  QueryOutcome stale = prepared->Execute();
  EXPECT_EQ(stale.status, QueryOutcome::Status::kInvalidated);
  // The session cache re-prepares transparently on the next Prepare
  // (the allocator may reuse the stale object's address, so assert on
  // behaviour and the miss counter, not pointer identity).
  PreparedQuery* fresh = session.Prepare(kTwoHopText);
  ASSERT_TRUE(fresh->ok()) << fresh->error();
  EXPECT_TRUE(fresh->current());
  ASSERT_TRUE(fresh->Bind("src", Value::Int64(7)));
  EXPECT_EQ(fresh->Execute().count, before);
  EXPECT_EQ(session.cache_misses(), 2u);
}

TEST_F(ServingApiTest, PreparedReexecutionSkipsPlanning) {
  // The acceptance bar "re-binding without re-planning" — structurally:
  // the session serves the same PreparedQuery object across requests and
  // only ever misses once for the text.
  Session session(db_.get());
  PreparedQuery* prepared = session.Prepare(kTwoHopText);
  ASSERT_TRUE(prepared->ok()) << prepared->error();
  for (int i = 0; i < 20; ++i) {
    PreparedQuery* p = session.Prepare(kTwoHopText);
    ASSERT_EQ(p, prepared);
    ASSERT_TRUE(p->Bind("src", Value::Int64(i)));
    ASSERT_TRUE(p->Execute().ok());
  }
  EXPECT_EQ(session.cache_misses(), 1u);
  EXPECT_EQ(session.cache_hits(), 20u);
}

TEST_F(ServingApiTest, ParamPredicateNeverSubsumedByFilteredIndex) {
  // A $param conjunct has no constant at prepare time, so the optimizer
  // must not let it certify subsumption by a predicate-filtered
  // secondary index (that would silently drop rows once the bind is
  // looser than the view). Regression: with a VP index over amt > 500
  // present, `r.amt > $min` bound to 10 must still count every match.
  Predicate large;
  large.AddConst(PropRef{PropSite::kAdjEdge, amt_key_, false, false}, CmpOp::kGt,
                 Value::Int64(500));
  db_->CreateVpIndex("LargeAmt", large, IndexConfig::Default(), Direction::kFwd);
  Session session(db_.get());
  PreparedQuery* prepared = session.Prepare(
      "MATCH (a)-[r:E]->(b) WHERE r.amt > $min RETURN COUNT(*)");
  ASSERT_TRUE(prepared->ok()) << prepared->error();
  const PropertyColumn* amt = db_->graph().edge_props().column(amt_key_);
  for (int64_t min : {10, 400, 700}) {
    ASSERT_TRUE(prepared->Bind("min", Value::Int64(min)));
    QueryOutcome out = prepared->Execute();
    ASSERT_TRUE(out.ok()) << out.error;
    uint64_t want = 0;
    for (edge_id_t e = 0; e < db_->graph().num_edges(); ++e) {
      if (!amt->IsNull(e) && amt->GetInt64(e) > min) ++want;
    }
    EXPECT_EQ(out.count, want) << "min=" << min;
  }
}

TEST_F(ServingApiTest, NormalizationPreservesStringLiterals) {
  // Whitespace collapses outside quotes only: queries differing inside a
  // 'string' literal must never share a plan-cache key.
  EXPECT_EQ(NormalizeQueryText("MATCH  (a)\n WHERE a.x = 'b  c'"),
            "MATCH (a) WHERE a.x = 'b  c'");
  EXPECT_NE(NormalizeQueryText("WHERE n = 'Alice  Smith'"),
            NormalizeQueryText("WHERE n = 'Alice Smith'"));
  EXPECT_EQ(NormalizeQueryText("MATCH   (a)-[r:E]->(b)"),
            NormalizeQueryText(" MATCH (a)-[r:E]->(b) "));
}

TEST_F(ServingApiTest, PinBindRejectsOutOfRangeVertexIds) {
  Session session(db_.get());
  PreparedQuery* prepared = session.Prepare(kTwoHopText);
  ASSERT_TRUE(prepared->ok()) << prepared->error();
  EXPECT_FALSE(prepared->Bind("src", Value::Int64(-1)));
  EXPECT_FALSE(prepared->Bind(
      "src", Value::Int64(static_cast<int64_t>(db_->graph().num_vertices()))));
  EXPECT_FALSE(prepared->Bind("src", Value::Int64(1000000000)));
  EXPECT_NE(prepared->bind_error().find("out of range"), std::string::npos)
      << prepared->bind_error();
  ASSERT_TRUE(prepared->Bind(
      "src", Value::Int64(static_cast<int64_t>(db_->graph().num_vertices()) - 1)));
}

TEST_F(ServingApiTest, PreparedExecuteFlushesPendingDeletes) {
  // Edge deletion buffers index-page updates without bumping the store
  // version or the edge count, so `current()` stays true — the prepared
  // path must flush before running, exactly like the one-shot path.
  Session session(db_.get());
  PreparedQuery* prepared = session.Prepare("MATCH (a)-[r:E]->(b) RETURN COUNT(*)");
  ASSERT_TRUE(prepared->ok()) << prepared->error();
  uint64_t before = prepared->Execute().count;
  db_->maintainer().OnEdgeDeleted(0);
  ASSERT_TRUE(prepared->current());  // deletion alone does not invalidate
  QueryOutcome after = prepared->Execute();
  ASSERT_TRUE(after.ok()) << after.error;
  EXPECT_EQ(after.count, before - 1);
  QueryGraph one_hop;
  int a = one_hop.AddVertex("a");
  int b = one_hop.AddVertex("b");
  one_hop.AddEdge(a, b, elabel_, "r");
  EXPECT_EQ(db_->Execute(one_hop).count, after.count);
}

TEST_F(ServingApiTest, RepeatedIdConstraintsIntersectInsteadOfOverwriting) {
  // A vertex carries at most one pin; further ID equalities must behave
  // as conjuncts (empty intersection when contradictory), not silently
  // replace the pin.
  uint64_t out_of_3 = 0;
  {
    const Graph& g = db_->graph();
    for (edge_id_t e = 0; e < g.num_edges(); ++e) {
      if (g.edge_src(e) == 3) ++out_of_3;
    }
  }
  QueryOutcome contradictory =
      db_->ExecuteCypher("MATCH (a)-[r:E]->(b) WHERE a.ID = 3 AND a.ID = 4 RETURN COUNT(*)");
  ASSERT_TRUE(contradictory.ok()) << contradictory.error;
  EXPECT_EQ(contradictory.count, 0u);
  Session session(db_.get());
  PreparedQuery* prepared = session.Prepare(
      "MATCH (a)-[r:E]->(b) WHERE a.ID = 3 AND a.ID = $p RETURN COUNT(*)");
  ASSERT_TRUE(prepared->ok()) << prepared->error();
  ASSERT_TRUE(prepared->Bind("p", Value::Int64(4)));
  EXPECT_EQ(prepared->Execute().count, 0u);  // 3 ∩ 4 = ∅
  ASSERT_TRUE(prepared->Bind("p", Value::Int64(3)));
  EXPECT_EQ(prepared->Execute().count, out_of_3);  // agreeing conjuncts
}

TEST_F(ServingApiTest, SessionCacheIsBounded) {
  Session session(db_.get());
  for (size_t i = 0; i < Session::kMaxCachedQueries + 40; ++i) {
    std::string text = "MATCH (a)-[r:E]->(b) WHERE a.ID = " + std::to_string(i % 500) +
                       " RETURN COUNT(*)";
    PreparedQuery* p = session.Prepare(text);
    ASSERT_TRUE(p->ok()) << p->error();
  }
  EXPECT_LE(session.cache_size(), Session::kMaxCachedQueries);
  EXPECT_GT(session.cache_size(), 0u);
}

}  // namespace
}  // namespace aplus
