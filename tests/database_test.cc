#include <gtest/gtest.h>

#include "core/database.h"
#include "datagen/example_graph.h"

namespace aplus {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() {
    ExampleGraph ex = BuildExampleGraph();
    account_label_ = ex.account_label;
    customer_label_ = ex.customer_label;
    wire_label_ = ex.wire_label;
    dd_label_ = ex.dd_label;
    owns_label_ = ex.owns_label;
    amount_key_ = ex.amount_key;
    currency_key_ = ex.currency_key;
    date_key_ = ex.date_key;
    city_key_ = ex.city_key;
    accounts_ = ex.accounts;
    db_ = std::make_unique<Database>(std::move(ex.graph));
    db_->graph().catalog().RegisterCategoryValue(currency_key_, "USD");
    db_->graph().catalog().RegisterCategoryValue(currency_key_, "EUR");
    db_->graph().catalog().RegisterCategoryValue(currency_key_, "GBP");
    db_->BuildPrimaryIndexes();
  }

  label_t account_label_, customer_label_, wire_label_, dd_label_, owns_label_;
  prop_key_t amount_key_, currency_key_, date_key_, city_key_;
  std::array<vertex_id_t, 5> accounts_;
  std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, RunSimpleQuery) {
  QueryGraph query;
  int a = query.AddVertex("a", account_label_);
  int b = query.AddVertex("b", account_label_);
  query.AddEdge(a, b, wire_label_);
  QueryOutcome result = db_->Execute(query);
  EXPECT_EQ(result.count, 9u);
  EXPECT_FALSE(result.plan.empty());
}

TEST_F(DatabaseTest, ReconfigureViaDdl) {
  DdlResult result = db_->ExecuteDdl(
      "RECONFIGURE PRIMARY INDEXES PARTITION BY eadj.label, eadj.currency SORT BY vnbr.city");
  ASSERT_TRUE(result.ok) << result.message;
  EXPECT_GE(result.seconds, 0.0);
  EXPECT_EQ(db_->index_store().primary(Direction::kFwd)->config().partitions.size(), 2u);
  // Queries still run correctly after reconfiguration.
  QueryGraph query;
  int a = query.AddVertex("a", account_label_);
  int b = query.AddVertex("b", account_label_);
  query.AddEdge(a, b, wire_label_);
  EXPECT_EQ(db_->Execute(query).count, 9u);
}

TEST_F(DatabaseTest, CreateOneHopViewViaDdl) {
  DdlResult result = db_->ExecuteDdl(
      "CREATE 1-HOP VIEW LargeTrnx "
      "MATCH vs-[eadj]->vd WHERE eadj.amount>50 "
      "INDEX AS FW-BW PARTITION BY eadj.label SORT BY vnbr.ID");
  ASSERT_TRUE(result.ok) << result.message;
  EXPECT_NE(db_->index_store().FindVpIndex("LargeTrnx", Direction::kFwd), nullptr);
  EXPECT_NE(db_->index_store().FindVpIndex("LargeTrnx", Direction::kBwd), nullptr);
}

TEST_F(DatabaseTest, CreateTwoHopViewViaDdl) {
  DdlResult result = db_->ExecuteDdl(
      "CREATE 2-HOP VIEW MoneyFlow "
      "MATCH vs-[eb]->vd-[eadj]->vnbr "
      "WHERE eb.date<eadj.date, eadj.amount<eb.amount "
      "INDEX AS PARTITION BY eadj.label SORT BY vnbr.city");
  ASSERT_TRUE(result.ok) << result.message;
  EpIndex* ep = db_->index_store().FindEpIndex("MoneyFlow");
  ASSERT_NE(ep, nullptr);
  EXPECT_EQ(ep->kind(), EpKind::kDstFwd);
}

TEST_F(DatabaseTest, DdlErrorsSurfaceCleanly) {
  DdlResult bad = db_->ExecuteDdl("CREATE 3-HOP VIEW Nope");
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.message.empty());
}

TEST_F(DatabaseTest, ExplainShowsPlan) {
  QueryGraph query;
  int a = query.AddVertex("a", account_label_);
  int b = query.AddVertex("b", account_label_);
  query.AddEdge(a, b, wire_label_);
  std::string plan = db_->Explain(query);
  EXPECT_NE(plan.find("SCAN"), std::string::npos);
}

TEST_F(DatabaseTest, InsertThroughMaintainerThenQuery) {
  QueryGraph query;
  int a = query.AddVertex("a", account_label_);
  int b = query.AddVertex("b", account_label_);
  query.AddEdge(a, b, wire_label_);
  uint64_t before = db_->Execute(query).count;

  Graph& g = db_->graph();
  edge_id_t e = g.AddEdge(accounts_[0], accounts_[1], wire_label_);
  g.edge_props().mutable_column(amount_key_)->SetInt64(e, 77);
  g.edge_props().mutable_column(date_key_)->SetInt64(e, 99);
  db_->maintainer().OnEdgeInserted(e);
  // Run() flushes pending updates automatically.
  EXPECT_EQ(db_->Execute(query).count, before + 1);
}

TEST_F(DatabaseTest, MemoryReporting) {
  size_t primary_only = db_->IndexMemoryBytes();
  db_->ExecuteDdl(
      "CREATE 1-HOP VIEW V1 MATCH vs-[eadj]->vd WHERE eadj.amount>50 "
      "INDEX AS FW PARTITION BY eadj.label SORT BY vnbr.ID");
  EXPECT_GT(db_->IndexMemoryBytes(), primary_only);
}

TEST_F(DatabaseTest, ExampleFourCurrencyQuery) {
  // Example 4: Wire transfers in USD out of Alice's accounts, after the
  // Section III reconfiguration the slice is read without predicates.
  db_->ExecuteDdl(
      "RECONFIGURE PRIMARY INDEXES PARTITION BY eadj.label, eadj.currency SORT BY vnbr.ID");
  QueryGraph query;
  int c1 = query.AddVertex("c1", customer_label_);
  int a1 = query.AddVertex("a1", account_label_);
  int a2 = query.AddVertex("a2", account_label_);
  query.AddEdge(c1, a1, owns_label_, "r1");
  query.AddEdge(a1, a2, wire_label_, "r2");
  QueryComparison usd;
  usd.lhs = QueryPropRef{1, true, currency_key_, false};
  usd.op = CmpOp::kEq;
  usd.rhs_const = Value::Category(0);  // USD
  query.AddPredicate(usd);
  QueryOutcome result = db_->Execute(query);
  // USD wires: t5 (v4->v2), t8 (v2->v4), t9 (v4->v5), t14 (v3->v4),
  // t20 (v1->v4). Owned sources: v1..v5 all owned; all 5 qualify.
  EXPECT_EQ(result.count, 5u);
}

}  // namespace
}  // namespace aplus
