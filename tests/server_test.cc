// aplusd server tests: the wire protocol end-to-end against an
// in-process Server on an ephemeral loopback port. Row payloads are
// byte-decoded by the client and compared against a Session executing
// the same text in-process (the serving-API oracle); protocol abuse
// (malformed / truncated / oversized / out-of-order frames) must fail
// with typed PROTOCOL_ERROR frames and never take the server down.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "datagen/power_law_generator.h"
#include "server/client.h"
#include "server/server.h"
#include "util/rng.h"

namespace aplus {
namespace {

constexpr const char* kPointLookup =
    "MATCH (a)-[r1:E]->(b)-[r2:E]->(c) WHERE a.ID = $src RETURN b, c, r2.amt";
constexpr const char* kPointCount =
    "MATCH (a)-[r1:E]->(b)-[r2:E]->(c) WHERE a.ID = $src RETURN COUNT(*)";
constexpr const char* kGroupedAgg =
    "MATCH (a)-[r1:E]->(b) RETURN b, COUNT(*), SUM(r1.amt)";
constexpr const char* kDistinctMid = "MATCH (a)-[r1:E]->(b)-[r2:E]->(c) RETURN DISTINCT b";
constexpr const char* kWholeGraphRows = "MATCH (a)-[r1:E]->(b)-[r2:E]->(c) RETURN a, b, c";

// Canonical order-insensitive encoding of a row set (both sides of the
// oracle diff deliver rows in nondeterministic order).
std::string Repr(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "∅";
    case ValueType::kDouble:
      return "d:" + std::to_string(v.AsDouble());
    case ValueType::kString:
      return "s:" + v.AsString();
    case ValueType::kBool:
      return v.AsBool() ? "b:1" : "b:0";
    default:
      return "i:" + std::to_string(v.AsInt64());
  }
}

std::vector<std::string> Canon(const std::vector<std::vector<Value>>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    std::string s;
    for (const Value& v : row) {
      s += Repr(v);
      s.push_back('|');
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct RowCollector : RowConsumer {
  std::mutex mu;
  std::vector<std::vector<Value>> rows;
  void OnBatch(const RowBatch& batch) override {
    std::lock_guard<std::mutex> lock(mu);
    for (uint32_t r = 0; r < batch.num_rows(); ++r) {
      std::vector<Value> row;
      for (size_t c = 0; c < batch.num_columns(); ++c) row.push_back(batch.Cell(c, r));
      rows.push_back(std::move(row));
    }
  }
};

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() { Rebuild(600); }

  void Rebuild(uint64_t num_vertices) {
    server_.reset();
    Graph graph;
    PowerLawParams params;
    params.num_vertices = num_vertices;
    params.avg_degree = 5.0;
    params.seed = 17;
    GeneratePowerLawGraph(params, &graph);
    amt_key_ = graph.AddEdgeProperty("amt", ValueType::kInt64);
    PropertyColumn* amt = graph.edge_props().mutable_column(amt_key_);
    Rng rng(23);
    for (edge_id_t e = 0; e < graph.num_edges(); ++e) {
      amt->SetInt64(e, static_cast<int64_t>(rng.NextBounded(1000)));
    }
    db_ = std::make_unique<Database>(std::move(graph));
    db_->BuildPrimaryIndexes();
    elabel_ = db_->graph().catalog().FindEdgeLabel("E");
  }

  // Starts (or restarts) the in-process server on an ephemeral port.
  void StartServer(ServerOptions options = {}) {
    server_ = std::make_unique<Server>(db_.get(), options);
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
  }

  std::unique_ptr<Client> Connect() {
    auto client = std::make_unique<Client>();
    std::string error;
    EXPECT_TRUE(client->Connect("127.0.0.1", server_->port(), &error)) << error;
    return client;
  }

  // The in-process oracle: the same text through a Session.
  std::vector<std::vector<Value>> OracleRows(const std::string& text,
                                             const std::vector<std::pair<std::string, Value>>&
                                                 params = {}) {
    Session session(db_.get());
    PreparedQuery* q = session.Prepare(text);
    EXPECT_TRUE(q->ok()) << q->error();
    for (const auto& p : params) EXPECT_TRUE(q->Bind(p.first, p.second)) << q->bind_error();
    RowCollector rows;
    QueryOutcome out = q->Execute(&rows);
    EXPECT_TRUE(out.ok()) << out.error;
    return std::move(rows.rows);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Server> server_;
  prop_key_t amt_key_ = kInvalidPropKey;
  label_t elabel_ = kInvalidLabel;
};

TEST_F(ServerTest, HelloHandshakeReportsBatchingFlag) {
  ServerOptions options;
  options.batching = false;
  StartServer(options);
  auto client = Connect();
  ASSERT_TRUE(client->connected());
  EXPECT_FALSE(client->server_batching());
}

TEST_F(ServerTest, PreparedPointLookupMatchesSessionOracle) {
  StartServer();
  auto client = Connect();
  Client::PreparedInfo info = client->Prepare(kPointLookup);
  ASSERT_TRUE(info.ok()) << info.error;
  ASSERT_EQ(info.param_names.size(), 1u);
  EXPECT_EQ(info.param_names[0], "src");
  ASSERT_EQ(info.columns.size(), 3u);
  EXPECT_EQ(info.columns[0].second, "b");
  EXPECT_EQ(info.columns[2].second, "r2.amt");

  for (vertex_id_t src : {7u, 42u, 123u, 0u}) {
    Client::Result result =
        client->Execute(info.stmt_id, {{"src", Value::Int64(src)}});
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_FALSE(result.more);
    auto oracle = OracleRows(kPointLookup, {{"src", Value::Int64(src)}});
    EXPECT_EQ(Canon(result.rows.rows), Canon(oracle)) << "src=" << src;
  }
}

TEST_F(ServerTest, CountStarAndGroupedAggregateMatchOracle) {
  StartServer();
  auto client = Connect();
  Client::PreparedInfo count = client->Prepare(kPointCount);
  ASSERT_TRUE(count.ok()) << count.error;
  Client::Result counted = client->Execute(count.stmt_id, {{"src", Value::Int64(7)}});
  ASSERT_TRUE(counted.ok()) << counted.error;
  auto count_oracle = OracleRows(kPointCount, {{"src", Value::Int64(7)}});
  EXPECT_EQ(Canon(counted.rows.rows), Canon(count_oracle));

  Client::PreparedInfo agg = client->Prepare(kGroupedAgg);
  ASSERT_TRUE(agg.ok()) << agg.error;
  Client::Result grouped = client->Execute(agg.stmt_id, {});
  ASSERT_TRUE(grouped.ok()) << grouped.error;
  EXPECT_EQ(Canon(grouped.rows.rows), Canon(OracleRows(kGroupedAgg)));
}

TEST_F(ServerTest, DistinctOverWireMatchesOracle) {
  StartServer();
  auto client = Connect();
  Client::PreparedInfo info = client->Prepare(kDistinctMid);
  ASSERT_TRUE(info.ok()) << info.error;
  Client::Result result = client->Execute(info.stmt_id, {});
  ASSERT_TRUE(result.ok()) << result.error;
  auto canon = Canon(result.rows.rows);
  EXPECT_EQ(canon, Canon(OracleRows(kDistinctMid)));
  // DISTINCT actually deduplicates: every canonical row is unique.
  EXPECT_EQ(std::unique(canon.begin(), canon.end()), canon.end());
}

TEST_F(ServerTest, FetchPagesThroughTheSpool) {
  StartServer();
  auto client = Connect();
  Client::PreparedInfo info = client->Prepare(kWholeGraphRows);
  ASSERT_TRUE(info.ok()) << info.error;
  auto oracle = OracleRows(kWholeGraphRows);
  ASSERT_GT(oracle.size(), 100u);

  // First page: max_rows rounds up to whole batches, so delivered >=
  // requested while more rows remain.
  Client::Result first = client->Execute(info.stmt_id, {}, 0, 100);
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_TRUE(first.more);
  EXPECT_GE(first.rows_delivered, 100u);
  EXPECT_LT(first.rows.rows.size(), oracle.size());

  std::vector<std::vector<Value>> all = std::move(first.rows.rows);
  bool more = first.more;
  while (more) {
    Client::Result page = client->Fetch(info.stmt_id, 100);
    ASSERT_TRUE(page.ok()) << page.error;
    for (auto& row : page.rows.rows) all.push_back(std::move(row));
    more = page.more;
  }
  EXPECT_EQ(Canon(all), Canon(oracle));

  // A drained spool fetches zero rows, not an error.
  Client::Result done = client->Fetch(info.stmt_id, 100);
  ASSERT_TRUE(done.ok()) << done.error;
  EXPECT_EQ(done.rows.rows.size(), 0u);
  EXPECT_FALSE(done.more);

  // FETCH on an unknown statement is a typed protocol error.
  Client::Result bad = client->Fetch(9999, 10);
  EXPECT_EQ(bad.status, wire::WireStatus::kProtocolError);
}

TEST_F(ServerTest, DeadlineProducesTimeoutFrame) {
  Rebuild(20000);
  StartServer();
  auto client = Connect();
  // Whole-graph triangle counting: far beyond a 1ms deadline at this size.
  Client::PreparedInfo info = client->Prepare(
      "MATCH (a)-[r1:E]->(b)-[r2:E]->(c), (a)-[r3:E]->(c) RETURN COUNT(*)");
  ASSERT_TRUE(info.ok()) << info.error;
  Client::Result result = client->Execute(info.stmt_id, {}, /*deadline_millis=*/1);
  EXPECT_EQ(result.status, wire::WireStatus::kTimeout) << result.error;
  EXPECT_FALSE(result.error.empty());
  // The connection survives a timed-out request.
  Client::Result retry = client->Execute(info.stmt_id, {}, /*deadline_millis=*/60000);
  EXPECT_TRUE(retry.ok()) << retry.error;
}

TEST_F(ServerTest, AdmissionFullReturnsOverloadedFrame) {
  Rebuild(20000);
  db_->admission().Configure({/*max_concurrent=*/1, /*max_queue=*/0, /*queue_timeout_ms=*/0});
  ServerOptions options;
  options.num_workers = 8;
  StartServer(options);

  constexpr int kClients = 6;
  std::atomic<int> ok_count{0};
  std::atomic<int> overloaded{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      auto client = Connect();
      Client::PreparedInfo info = client->Prepare(
          "MATCH (a)-[r1:E]->(b)-[r2:E]->(c), (a)-[r3:E]->(c) RETURN COUNT(*)");
      ASSERT_TRUE(info.ok()) << info.error;
      Client::Result result = client->Execute(info.stmt_id, {});
      if (result.ok()) {
        ok_count.fetch_add(1);
      } else {
        EXPECT_EQ(result.status, wire::WireStatus::kOverloaded) << result.error;
        overloaded.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // One slot, no queue: at least one runs, at least one is rejected
  // with the typed OVERLOADED frame, nothing hangs or crashes.
  EXPECT_GE(ok_count.load(), 1);
  EXPECT_GE(overloaded.load(), 1);
  EXPECT_EQ(ok_count.load() + overloaded.load(), kClients);
}

TEST_F(ServerTest, SharedPlanCacheHitsAcrossConnectionsAndInvalidates) {
  StartServer();
  auto a = Connect();
  auto b = Connect();
  ASSERT_TRUE(a->Prepare(kPointLookup).ok());
  EXPECT_EQ(server_->plan_cache().misses(), 1u);
  EXPECT_EQ(server_->plan_cache().hits(), 0u);
  // Second connection, same text: served from the shared plan.
  ASSERT_TRUE(b->Prepare(kPointLookup).ok());
  EXPECT_EQ(server_->plan_cache().misses(), 1u);
  EXPECT_EQ(server_->plan_cache().hits(), 1u);
  // Whitespace variants normalize onto the same entry.
  ASSERT_TRUE(b->Prepare("  MATCH (a)-[r1:E]->(b)-[r2:E]->(c)   WHERE a.ID = $src "
                         "RETURN b, c, r2.amt  ")
                  .ok());
  EXPECT_EQ(server_->plan_cache().hits(), 2u);

  // DDL (index rebuild) bumps the store version: the entry is stale and
  // the next prepare re-optimizes.
  db_->BuildPrimaryIndexes();
  ASSERT_TRUE(a->Prepare(kPointLookup).ok());
  EXPECT_EQ(server_->plan_cache().misses(), 2u);

  // Ingest growing the graph past 2x the planned edge count also
  // invalidates (plan quality heuristic, mirroring Session::Prepare).
  const uint64_t to_add = db_->graph().num_edges() + 1;
  Rng rng(5);
  const uint64_t n = db_->graph().num_vertices();
  for (uint64_t i = 0; i < to_add; ++i) {
    edge_id_t e = db_->graph().AddEdge(static_cast<vertex_id_t>(rng.NextBounded(n)),
                                       static_cast<vertex_id_t>(rng.NextBounded(n)), elabel_);
    db_->graph().edge_props().mutable_column(amt_key_)->SetInt64(e, 1);
    db_->maintainer().OnEdgeInserted(e);
  }
  ASSERT_TRUE(b->Prepare(kPointLookup).ok());
  EXPECT_EQ(server_->plan_cache().misses(), 3u);
  // And the re-prepared plan still answers correctly on the grown graph.
  auto c = Connect();
  Client::PreparedInfo info = c->Prepare(kPointLookup);
  ASSERT_TRUE(info.ok());
  Client::Result result = c->Execute(info.stmt_id, {{"src", Value::Int64(7)}});
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(Canon(result.rows.rows),
            Canon(OracleRows(kPointLookup, {{"src", Value::Int64(7)}})));
}

TEST_F(ServerTest, MalformedFramesFailTypedNotFatal) {
  StartServer();

  {  // A frame advertising an oversized payload is rejected and closed.
    auto client = Connect();
    uint8_t bad[5];
    uint32_t len = wire::kMaxFrameBytes + 1;
    std::memcpy(bad, &len, 4);
    bad[4] = 0x02;
    ASSERT_TRUE(client->SendRaw(bad, sizeof(bad)));
    std::vector<uint8_t> frame;
    std::string error;
    ASSERT_TRUE(client->ReadFrameRaw(&frame, &error)) << error;
    EXPECT_EQ(frame[4], static_cast<uint8_t>(wire::FrameType::kError));
    EXPECT_EQ(frame[5], static_cast<uint8_t>(wire::WireStatus::kProtocolError));
    // ...and the server closes the connection afterwards.
    EXPECT_FALSE(client->ReadFrameRaw(&frame, &error));
  }

  {  // Unknown frame type.
    auto client = Connect();
    uint8_t bad[5] = {0, 0, 0, 0, 0x7F};
    ASSERT_TRUE(client->SendRaw(bad, sizeof(bad)));
    std::vector<uint8_t> frame;
    std::string error;
    ASSERT_TRUE(client->ReadFrameRaw(&frame, &error)) << error;
    EXPECT_EQ(frame[5], static_cast<uint8_t>(wire::WireStatus::kProtocolError));
  }

  {  // EXECUTE whose payload truncates mid-parameter.
    auto client = Connect();
    std::vector<uint8_t> buf;
    wire::FrameWriter w(&buf);
    w.BeginFrame(wire::FrameType::kExecute);
    w.PutU32(1);  // stmt_id, but the rest of the payload is missing
    w.EndFrame();
    ASSERT_TRUE(client->SendRaw(buf.data(), buf.size()));
    std::vector<uint8_t> frame;
    std::string error;
    ASSERT_TRUE(client->ReadFrameRaw(&frame, &error)) << error;
    EXPECT_EQ(frame[5], static_cast<uint8_t>(wire::WireStatus::kProtocolError));
  }

  {  // A request before HELLO is rejected on a hand-rolled socket.
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    std::vector<uint8_t> buf;
    wire::FrameWriter w(&buf);
    w.BeginFrame(wire::FrameType::kStats);
    w.EndFrame();
    ASSERT_EQ(send(fd, buf.data(), buf.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(buf.size()));
    uint8_t response[6] = {0};
    ssize_t got = recv(fd, response, sizeof(response), MSG_WAITALL);
    ASSERT_EQ(got, static_cast<ssize_t>(sizeof(response)));
    EXPECT_EQ(response[4], static_cast<uint8_t>(wire::FrameType::kError));
    EXPECT_EQ(response[5], static_cast<uint8_t>(wire::WireStatus::kProtocolError));
    close(fd);
  }

  {  // A truncated frame followed by connection abort must not wedge
     // the server; a later client still gets served.
    auto client = Connect();
    uint8_t partial[3] = {9, 0, 0};
    ASSERT_TRUE(client->SendRaw(partial, sizeof(partial)));
    client->Close();
  }

  {  // Random byte fuzz: the server survives garbage from many
     // connections in a row.
    Rng rng(99);
    for (int round = 0; round < 10; ++round) {
      auto client = Connect();
      uint8_t junk[257];
      size_t len = 1 + rng.NextBounded(sizeof(junk) - 1);
      for (size_t i = 0; i < len; ++i) junk[i] = static_cast<uint8_t>(rng.NextBounded(256));
      client->SendRaw(junk, len);
      client->Close();
    }
  }

  // After all of the abuse, a well-behaved client still works.
  auto client = Connect();
  Client::PreparedInfo info = client->Prepare(kPointCount);
  ASSERT_TRUE(info.ok()) << info.error;
  Client::Result result = client->Execute(info.stmt_id, {{"src", Value::Int64(7)}});
  EXPECT_TRUE(result.ok()) << result.error;
}

TEST_F(ServerTest, BatchingGroupsIdenticalExecutesAndMatchesUnbatched) {
  // One worker plus a slow occupying query (whole-graph triangles on a
  // 20k graph): identical requests queue behind it, so the batching
  // seam deterministically groups them.
  Rebuild(20000);
  ServerOptions batched;
  batched.num_workers = 1;
  batched.batching = true;
  StartServer(batched);

  auto oracle = OracleRows(kPointLookup, {{"src", Value::Int64(7)}});

  auto blocker = Connect();
  Client::PreparedInfo blocker_info = blocker->Prepare(
      "MATCH (a)-[r1:E]->(b)-[r2:E]->(c), (a)-[r3:E]->(c) RETURN COUNT(*)");
  ASSERT_TRUE(blocker_info.ok());

  constexpr int kFollowers = 3;
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<Client::PreparedInfo> infos;
  for (int i = 0; i < kFollowers; ++i) {
    clients.push_back(Connect());
    infos.push_back(clients.back()->Prepare(kPointLookup));
    ASSERT_TRUE(infos.back().ok());
  }

  std::thread occupant([&] {
    Client::Result r = blocker->Execute(blocker_info.stmt_id, {});
    EXPECT_TRUE(r.ok()) << r.error;
  });
  // Give the occupying execute time to claim the single worker, then
  // fire the identical requests; they queue and group.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::vector<std::thread> threads;
  for (int i = 0; i < kFollowers; ++i) {
    threads.emplace_back([&, i] {
      Client::Result r = clients[i]->Execute(infos[i].stmt_id, {{"src", Value::Int64(7)}});
      ASSERT_TRUE(r.ok()) << r.error;
      EXPECT_EQ(Canon(r.rows.rows), Canon(oracle));
    });
  }
  occupant.join();
  for (std::thread& t : threads) t.join();
  EXPECT_GE(server_->batch_saved(), 1u);

  // Differential: batching off produces the same rows.
  ServerOptions unbatched;
  unbatched.batching = false;
  StartServer(unbatched);
  auto client = Connect();
  Client::PreparedInfo info = client->Prepare(kPointLookup);
  ASSERT_TRUE(info.ok());
  Client::Result r = client->Execute(info.stmt_id, {{"src", Value::Int64(7)}});
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(Canon(r.rows.rows), Canon(oracle));
  EXPECT_EQ(server_->batch_saved(), 0u);
}

TEST_F(ServerTest, EightClientSoakWithHighCacheHitRate) {
  StartServer();
  auto point_oracle = [&](vertex_id_t src) {
    return Canon(OracleRows(kPointLookup, {{"src", Value::Int64(src)}}));
  };
  std::vector<std::vector<std::string>> oracles;
  for (vertex_id_t src = 0; src < 16; ++src) oracles.push_back(point_oracle(src));
  auto agg_oracle = Canon(OracleRows(kGroupedAgg));
  auto distinct_oracle = Canon(OracleRows(kDistinctMid));

  constexpr int kClients = 8;
  constexpr int kRounds = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto client = Connect();
      Rng rng(static_cast<uint64_t>(1000 + t));
      for (int round = 0; round < kRounds; ++round) {
        // Statement churn every round: prepares keep flowing through
        // the shared cache, which is what the hit-rate bar measures.
        Client::PreparedInfo point = client->Prepare(kPointLookup);
        ASSERT_TRUE(point.ok()) << point.error;
        for (int i = 0; i < 4; ++i) {
          vertex_id_t src = static_cast<vertex_id_t>(rng.NextBounded(16));
          Client::Result r = client->Execute(point.stmt_id, {{"src", Value::Int64(src)}});
          ASSERT_TRUE(r.ok()) << r.error;
          EXPECT_EQ(Canon(r.rows.rows), oracles[src]);
        }
        Client::PreparedInfo agg = client->Prepare(kGroupedAgg);
        ASSERT_TRUE(agg.ok()) << agg.error;
        Client::Result ar = client->Execute(agg.stmt_id, {});
        ASSERT_TRUE(ar.ok()) << ar.error;
        EXPECT_EQ(Canon(ar.rows.rows), agg_oracle);
        Client::PreparedInfo distinct = client->Prepare(kDistinctMid);
        ASSERT_TRUE(distinct.ok()) << distinct.error;
        Client::Result dr = client->Execute(distinct.stmt_id, {});
        ASSERT_TRUE(dr.ok()) << dr.error;
        EXPECT_EQ(Canon(dr.rows.rows), distinct_oracle);
        std::string error;
        ASSERT_TRUE(client->CloseStatement(point.stmt_id, &error)) << error;
        ASSERT_TRUE(client->CloseStatement(agg.stmt_id, &error)) << error;
        ASSERT_TRUE(client->CloseStatement(distinct.stmt_id, &error)) << error;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const uint64_t hits = server_->plan_cache().hits();
  const uint64_t misses = server_->plan_cache().misses();
  ASSERT_GT(hits + misses, 0u);
  // 3 texts, 8 clients x 8 rounds of prepares: after the 3 warmup
  // misses everything is a shared-plan hit (>= 90% acceptance bar).
  EXPECT_GE(static_cast<double>(hits) / static_cast<double>(hits + misses), 0.9);
  EXPECT_EQ(server_->queries(), uint64_t{kClients * kRounds * 6});
}

TEST_F(ServerTest, CancelStopsInflightExecute) {
  Rebuild(20000);
  StartServer();
  auto client = Connect();
  Client::PreparedInfo info = client->Prepare(
      "MATCH (a)-[r1:E]->(b)-[r2:E]->(c), (a)-[r3:E]->(c) RETURN COUNT(*)");
  ASSERT_TRUE(info.ok()) << info.error;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    client->Cancel();
  });
  Client::Result result = client->Execute(info.stmt_id, {});
  canceller.join();
  // Either the cancel landed mid-execute (CANCELLED) or the query beat
  // it (OK) — on the 20k graph the former, but don't flake on fast
  // machines.
  if (!result.ok()) {
    EXPECT_EQ(result.status, wire::WireStatus::kCancelled) << result.error;
    // The connection stays usable.
    Client::Result retry = client->Execute(info.stmt_id, {}, /*deadline_millis=*/60000);
    EXPECT_TRUE(retry.ok()) << retry.error;
  }
}

TEST_F(ServerTest, CleanShutdownDrainsInflightQueries) {
  Rebuild(20000);
  StartServer();
  constexpr int kClients = 4;
  std::atomic<int> responded{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      auto client = Connect();
      Client::PreparedInfo info = client->Prepare(
          "MATCH (a)-[r1:E]->(b)-[r2:E]->(c), (a)-[r3:E]->(c) RETURN COUNT(*)");
      ASSERT_TRUE(info.ok()) << info.error;
      Client::Result result = client->Execute(info.stmt_id, {});
      // Stop() cancels in-flight work; any typed outcome (or a closed
      // socket) is acceptable, hanging is not.
      responded.fetch_add(1);
      (void)result;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server_->Stop();  // must not hang with executes in flight
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(responded.load(), kClients);
}

}  // namespace
}  // namespace aplus
