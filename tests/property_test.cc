// Property-based (parameterized) tests: structural invariants of the A+
// index subsystem checked across a sweep of graph shapes, seeds, and
// index configurations.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "datagen/financial_props.h"
#include "datagen/label_assigner.h"
#include "datagen/power_law_generator.h"
#include "index/ep_index.h"
#include "index/index_store.h"
#include "index/vp_index.h"

namespace aplus {
namespace {

struct GraphShape {
  uint64_t num_vertices;
  double avg_degree;
  uint64_t seed;
  uint32_t num_elabels;
};

class IndexInvariantTest : public ::testing::TestWithParam<GraphShape> {
 protected:
  void SetUp() override {
    const GraphShape& shape = GetParam();
    PowerLawParams params;
    params.num_vertices = shape.num_vertices;
    params.avg_degree = shape.avg_degree;
    params.seed = shape.seed;
    GeneratePowerLawGraph(params, &graph_);
    AssignRandomLabels(2, shape.num_elabels, shape.seed + 1, &graph_);
    keys_ = AddFinancialProperties(shape.seed + 2, &graph_, 12);
  }

  Graph graph_;
  FinancialPropKeys keys_;
};

TEST_P(IndexInvariantTest, PrimaryPartitionsCoverAllEdgesExactlyOnce) {
  for (Direction dir : {Direction::kFwd, Direction::kBwd}) {
    PrimaryIndex index(&graph_, dir);
    IndexConfig config = IndexConfig::Default();
    config.partitions.push_back({PartitionSource::kNbrProp, keys_.acc});
    index.Build(config);
    std::set<edge_id_t> seen;
    for (vertex_id_t v = 0; v < graph_.num_vertices(); ++v) {
      for (label_t l = 0; l < graph_.catalog().num_edge_labels(); ++l) {
        for (category_t acc = 0; acc <= kNumAccountTypes; ++acc) {
          AdjListSlice slice = index.GetList(v, {l, acc});
          for (uint32_t i = 0; i < slice.size(); ++i) {
            edge_id_t e = slice.EdgeAt(i);
            EXPECT_TRUE(seen.insert(e).second) << "edge " << e << " appears twice";
            EXPECT_EQ(index.OwnerOf(e), v);
            EXPECT_EQ(graph_.edge_label(e), l);
          }
        }
      }
    }
    EXPECT_EQ(seen.size(), graph_.num_edges());
  }
}

TEST_P(IndexInvariantTest, InnermostListsAreSorted) {
  PrimaryIndex index(&graph_, Direction::kFwd);
  IndexConfig config = IndexConfig::Default();
  config.sorts.clear();
  config.sorts.push_back({SortSource::kEdgeProp, keys_.date});
  index.Build(config);
  const PropertyColumn* date = graph_.edge_props().column(keys_.date);
  for (vertex_id_t v = 0; v < graph_.num_vertices(); ++v) {
    for (label_t l = 0; l < graph_.catalog().num_edge_labels(); ++l) {
      AdjListSlice slice = index.GetList(v, {l});
      for (uint32_t i = 1; i < slice.size(); ++i) {
        EXPECT_LE(date->GetInt64(slice.EdgeAt(i - 1)), date->GetInt64(slice.EdgeAt(i)));
      }
    }
  }
}

TEST_P(IndexInvariantTest, VpOffsetsAlwaysWithinBaseLists) {
  PrimaryIndex primary(&graph_, Direction::kFwd);
  primary.Build(IndexConfig::Default());
  OneHopViewDef view;
  view.name = "big";
  view.pred.AddConst(PropRef{PropSite::kAdjEdge, keys_.amount, false, false}, CmpOp::kGt,
                     Value::Int64(700));
  VpIndex vp(&graph_, &primary, view, IndexConfig::Default());
  vp.Build();
  const PropertyColumn* amount = graph_.edge_props().column(keys_.amount);
  uint64_t listed = 0;
  for (vertex_id_t v = 0; v < graph_.num_vertices(); ++v) {
    const vertex_id_t* nbrs;
    const edge_id_t* eids;
    uint32_t base_len;
    primary.GetListBase(v, &nbrs, &eids, &base_len);
    AdjListSlice slice = vp.GetFullList(v);
    listed += slice.size();
    for (uint32_t i = 0; i < slice.size(); ++i) {
      EXPECT_LT(slice.BaseOffsetAt(i), base_len);
      edge_id_t e = slice.EdgeAt(i);
      EXPECT_GT(amount->GetInt64(e), 700);
      EXPECT_EQ(graph_.edge_src(e), v);
    }
  }
  EXPECT_EQ(listed, vp.num_edges_indexed());
}

TEST_P(IndexInvariantTest, VpSubsetOfPrimary) {
  // Every VP list must be a subset of the owner's primary list
  // (Section III-B: "the final lists ... are subsets of lists in the
  // primary A+ index").
  PrimaryIndex primary(&graph_, Direction::kBwd);
  primary.Build(IndexConfig::Default());
  OneHopViewDef view;
  view.name = "cq_only";
  view.pred.AddConst(PropRef{PropSite::kNbrVertex, keys_.acc, false, false}, CmpOp::kEq,
                     Value::Category(kAccCq));
  VpIndex vp(&graph_, &primary, view, IndexConfig::Default());
  vp.Build();
  for (vertex_id_t v = 0; v < graph_.num_vertices(); v += 3) {
    std::set<edge_id_t> primary_edges;
    AdjListSlice pslice = primary.GetFullList(v);
    for (uint32_t i = 0; i < pslice.size(); ++i) primary_edges.insert(pslice.EdgeAt(i));
    AdjListSlice vslice = vp.GetFullList(v);
    for (uint32_t i = 0; i < vslice.size(); ++i) {
      EXPECT_TRUE(primary_edges.count(vslice.EdgeAt(i)) > 0);
    }
  }
}

TEST_P(IndexInvariantTest, EpListsAreSubsetsOfAnchorLists) {
  PrimaryIndex fwd(&graph_, Direction::kFwd);
  PrimaryIndex bwd(&graph_, Direction::kBwd);
  fwd.Build(IndexConfig::Default());
  bwd.Build(IndexConfig::Default());
  TwoHopViewDef view;
  view.name = "flow";
  view.kind = EpKind::kDstFwd;
  view.pred.AddRef(PropRef{PropSite::kBoundEdge, keys_.date, false, false}, CmpOp::kLt,
                   PropRef{PropSite::kAdjEdge, keys_.date, false, false});
  view.pred.AddRef(PropRef{PropSite::kBoundEdge, keys_.amount, false, false}, CmpOp::kGt,
                   PropRef{PropSite::kAdjEdge, keys_.amount, false, false});
  EpIndex ep(&graph_, &fwd, &bwd, view, IndexConfig::Default());
  ep.Build();
  const PropertyColumn* date = graph_.edge_props().column(keys_.date);
  const PropertyColumn* amount = graph_.edge_props().column(keys_.amount);
  for (edge_id_t eb = 0; eb < graph_.num_edges(); eb += 11) {
    vertex_id_t anchor = graph_.edge_dst(eb);
    AdjListSlice slice = ep.GetFullList(eb);
    for (uint32_t i = 0; i < slice.size(); ++i) {
      edge_id_t eadj = slice.EdgeAt(i);
      EXPECT_EQ(graph_.edge_src(eadj), anchor);
      EXPECT_NE(eadj, eb);
      EXPECT_LT(date->GetInt64(eb), date->GetInt64(eadj));
      EXPECT_GT(amount->GetInt64(eb), amount->GetInt64(eadj));
    }
  }
}

TEST_P(IndexInvariantTest, OffsetWidthIsMinimal) {
  PrimaryIndex primary(&graph_, Direction::kFwd);
  primary.Build(IndexConfig::Default());
  OneHopViewDef view;
  view.name = "all";
  VpIndex vp(&graph_, &primary, view, IndexConfig::Default());
  vp.Build();
  // With avg degree << 256 most pages should use 1-2 byte offsets; and
  // every page's width must cover its longest base list.
  size_t bytes = vp.MemoryBytes();
  EXPECT_LT(static_cast<double>(bytes),
            4.0 * static_cast<double>(graph_.num_edges()) + 64.0 * graph_.num_vertices());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IndexInvariantTest,
    ::testing::Values(GraphShape{500, 3.0, 1, 2}, GraphShape{1000, 8.0, 2, 3},
                      GraphShape{2000, 5.0, 3, 1}, GraphShape{700, 12.0, 4, 4},
                      GraphShape{64, 4.0, 5, 2},   // exactly one page
                      GraphShape{65, 4.0, 6, 2},   // page boundary
                      GraphShape{4000, 2.0, 7, 2}));

// Sweep of primary configurations: counts of a fixed query must be
// invariant under every partitioning/sorting choice.
class ConfigSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ConfigSweepTest, QueryCountsInvariantUnderConfig) {
  Graph graph;
  PowerLawParams params;
  params.num_vertices = 900;
  params.avg_degree = 5.0;
  params.seed = 13;
  GeneratePowerLawGraph(params, &graph);
  AssignRandomLabels(2, 2, 14, &graph);
  FinancialPropKeys keys = AddFinancialProperties(15, &graph, 8);

  IndexConfig config;
  switch (GetParam()) {
    case 0:
      config = IndexConfig::Flat();
      break;
    case 1:
      config = IndexConfig::Default();
      break;
    case 2:
      config = IndexConfig::Default();
      config.partitions.push_back({PartitionSource::kNbrLabel, kInvalidPropKey});
      break;
    case 3:
      config = IndexConfig::Default();
      config.partitions.push_back({PartitionSource::kNbrProp, keys.acc});
      config.sorts.clear();
      config.sorts.push_back({SortSource::kNbrProp, keys.city});
      break;
    case 4:
      config = IndexConfig::Default();
      config.sorts.clear();
      config.sorts.push_back({SortSource::kEdgeProp, keys.date});
      break;
    default:
      config = IndexConfig::Default();
  }

  IndexStore store(&graph);
  store.BuildPrimary(config);
  // Count all 2-paths with an ID restriction by walking the index
  // directly (no optimizer, isolating index correctness).
  uint64_t count = 0;
  for (vertex_id_t v = 0; v < 50; ++v) {
    AdjListSlice first = store.primary(Direction::kFwd)->GetFullList(v);
    for (uint32_t i = 0; i < first.size(); ++i) {
      vertex_id_t mid = first.NbrAt(i);
      if (mid == v) continue;
      AdjListSlice second = store.primary(Direction::kFwd)->GetFullList(mid);
      for (uint32_t j = 0; j < second.size(); ++j) {
        if (second.NbrAt(j) != v && second.NbrAt(j) != mid &&
            second.EdgeAt(j) != first.EdgeAt(i)) {
          ++count;
        }
      }
    }
  }
  // Reference from raw edges.
  static uint64_t reference = 0;
  static bool have_reference = false;
  if (!have_reference) {
    std::vector<std::vector<std::pair<vertex_id_t, edge_id_t>>> out(graph.num_vertices());
    for (edge_id_t e = 0; e < graph.num_edges(); ++e) {
      out[graph.edge_src(e)].push_back({graph.edge_dst(e), e});
    }
    for (vertex_id_t v = 0; v < 50; ++v) {
      for (auto [mid, e1] : out[v]) {
        if (mid == v) continue;
        for (auto [end, e2] : out[mid]) {
          if (end != v && end != mid && e2 != e1) ++reference;
        }
      }
    }
    have_reference = true;
  }
  EXPECT_EQ(count, reference);
}

INSTANTIATE_TEST_SUITE_P(Configs, ConfigSweepTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace aplus
