// Differential tests for concurrent serving under online updates (the
// epoch/delta tentpole): reader threads execute prepared queries while a
// writer streams edge insertions (and later deletions) through
// Database::BeginConcurrentIngest. Validation is two-layered:
//
//  1. During the phase, every observed result must be bracketed by the
//     quiesced snapshots. Insert-only ingest makes match sets monotone
//     increasing, so each one-hop row multiset must contain the
//     pre-ingest adjacency and be contained in the post-ingest
//     adjacency, and every match count must lie in [pre, post]; a
//     delete-only phase brackets the other way. This is exactly the
//     per-list read-committed contract the index layer promises.
//  2. Once writers quiesce (EndConcurrentIngest), counts and row sets
//     must equal a fresh oracle Database built from scratch over the
//     final edge set — merges lost nothing and tombstones erased
//     exactly the deleted edges.
//
// Runs 3 seeds x {1, 4} reader threads (the concurrency-stress CI lane
// executes this suite under TSan with APLUS_THREADS=4). Nightly scales
// the graph through APLUS_CONC_VERTICES / APLUS_CONC_DEGREE.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "datagen/power_law_generator.h"
#include "util/rng.h"

namespace aplus {
namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* s = std::getenv(name);
  return (s != nullptr && *s != '\0') ? std::strtoull(s, nullptr, 10) : fallback;
}

struct EdgeTriple {
  vertex_id_t src, dst;
  label_t label;
};

// Parallel plan execution delivers batches concurrently from workers,
// so the collector is mutex-guarded.
struct RowCollector : RowConsumer {
  std::mutex mu;
  std::vector<int64_t> values;  // first column only (the b vertex)
  void OnBatch(const RowBatch& batch) override {
    std::lock_guard<std::mutex> lock(mu);
    for (uint32_t r = 0; r < batch.num_rows(); ++r) values.push_back(batch.Cell(0, r).AsInt64());
  }
};

constexpr const char* kOneHopText = "MATCH (a)-[r:E]->(b) WHERE a.ID = $src RETURN b";
constexpr const char* kTwoHopText =
    "MATCH (a)-[r1:E]->(b)-[r2:E]->(c) WHERE a.ID = $src RETURN b, c";

// One recorded reader execution, validated against the bracketing
// snapshots after the phase ends.
struct Observation {
  vertex_id_t src;
  uint64_t two_hop_count;
  std::map<int64_t, uint64_t> one_hop_rows;  // b -> multiplicity
};

class ConcurrentDiffTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static std::vector<EdgeTriple> SnapshotEdges(const Graph& g) {
    std::vector<EdgeTriple> all;
    for (edge_id_t e = 0; e < g.num_edges(); ++e) {
      all.push_back({g.edge_src(e), g.edge_dst(e), g.edge_label(e)});
    }
    return all;
  }

  static Graph BuildGraph(uint64_t num_vertices, const std::vector<EdgeTriple>& edges) {
    Graph g;
    label_t vlabel = g.catalog().AddVertexLabel("V");
    g.catalog().AddEdgeLabel("E");
    for (vertex_id_t v = 0; v < num_vertices; ++v) g.AddVertex(vlabel);
    for (const EdgeTriple& t : edges) g.AddEdge(t.src, t.dst, t.label);
    return g;
  }

  // Quiesced reference answers for one probe vertex on any database.
  static Observation Quiesced(Database* db, vertex_id_t src) {
    Session session(db);
    Observation obs;
    obs.src = src;
    PreparedQuery* one = session.Prepare(kOneHopText);
    EXPECT_TRUE(one->ok()) << one->error();
    EXPECT_TRUE(one->Bind("src", Value::Int64(src)));
    RowCollector rc;
    QueryOutcome out = one->Execute(&rc, /*num_threads=*/1);
    EXPECT_TRUE(out.ok()) << out.error;
    for (int64_t b : rc.values) ++obs.one_hop_rows[b];
    PreparedQuery* two = session.Prepare(kTwoHopText);
    EXPECT_TRUE(two->ok()) << two->error();
    EXPECT_TRUE(two->Bind("src", Value::Int64(src)));
    obs.two_hop_count = two->Execute(nullptr, /*num_threads=*/1).count;
    return obs;
  }

  // `lo` and `hi` bracket the phase; every observation must satisfy
  // lo <= observed <= hi element-wise (lo = smaller snapshot).
  static void ValidateBracketed(const std::vector<Observation>& observed,
                                const std::map<vertex_id_t, Observation>& lo,
                                const std::map<vertex_id_t, Observation>& hi,
                                const char* phase) {
    for (const Observation& obs : observed) {
      const Observation& pre = lo.at(obs.src);
      const Observation& post = hi.at(obs.src);
      EXPECT_GE(obs.two_hop_count, pre.two_hop_count)
          << phase << " two-hop undershot the lower snapshot, src=" << obs.src;
      EXPECT_LE(obs.two_hop_count, post.two_hop_count)
          << phase << " two-hop overshot the upper snapshot, src=" << obs.src;
      // Upper bound: every observed row is backed by an edge of the
      // larger snapshot with at least its multiplicity.
      for (const auto& [b, mult] : obs.one_hop_rows) {
        auto it = post.one_hop_rows.find(b);
        ASSERT_NE(it, post.one_hop_rows.end())
            << phase << " returned a row absent from the upper snapshot: src=" << obs.src
            << " b=" << b;
        EXPECT_LE(mult, it->second) << phase << " src=" << obs.src << " b=" << b;
      }
      // Lower bound: rows of the smaller snapshot are in every
      // intermediate list view, so none may be missing.
      for (const auto& [b, mult] : pre.one_hop_rows) {
        auto it = obs.one_hop_rows.find(b);
        ASSERT_NE(it, obs.one_hop_rows.end())
            << phase << " lost a row of the lower snapshot: src=" << obs.src << " b=" << b;
        EXPECT_GE(it->second, mult) << phase << " src=" << obs.src << " b=" << b;
      }
    }
  }

  // Prepares one session per reader, then runs `writer_body` on its own
  // thread while `num_readers` threads hammer the probe vertices with
  // the prepared queries until the writer finishes, recording every
  // execution. Preparation happens strictly before the writer starts
  // (Database::Prepare is not safe against concurrent index mutation);
  // Bind/Execute are per-session thereafter — surviving the ingest
  // without re-preparing is the plan-cache half of the tentpole.
  static std::vector<Observation> RunReaders(Database* db, int num_readers,
                                             const std::vector<vertex_id_t>& probes,
                                             const std::function<void()>& writer_body) {
    std::vector<std::unique_ptr<Session>> sessions;
    struct ReaderQueries {
      PreparedQuery* one;
      PreparedQuery* two;
    };
    std::vector<ReaderQueries> queries;
    for (int t = 0; t < num_readers; ++t) {
      sessions.push_back(std::make_unique<Session>(db));
      PreparedQuery* one = sessions.back()->Prepare(kOneHopText);
      PreparedQuery* two = sessions.back()->Prepare(kTwoHopText);
      EXPECT_TRUE(one->ok()) << one->error();
      EXPECT_TRUE(two->ok()) << two->error();
      queries.push_back({one, two});
    }
    std::atomic<bool> done{false};
    std::thread writer([&] {
      writer_body();
      done.store(true, std::memory_order_release);
    });
    std::vector<std::vector<Observation>> per_thread(num_readers);
    std::vector<std::thread> readers;
    for (int t = 0; t < num_readers; ++t) {
      readers.emplace_back([&, t] {
        ReaderQueries q = queries[t];
        size_t round = 0;
        // At least one full pass over the probes even if the writer
        // finishes instantly; then keep going until it does.
        do {
          for (vertex_id_t src : probes) {
            Observation obs;
            obs.src = src;
            ASSERT_TRUE(q.one->Bind("src", Value::Int64(src)));
            RowCollector rc;
            QueryOutcome out = q.one->Execute(&rc);
            ASSERT_TRUE(out.ok()) << out.error;
            for (int64_t b : rc.values) ++obs.one_hop_rows[b];
            ASSERT_TRUE(q.two->Bind("src", Value::Int64(src)));
            QueryOutcome out2 = q.two->Execute(nullptr);
            ASSERT_TRUE(out2.ok()) << out2.error;
            obs.two_hop_count = out2.count;
            per_thread[t].push_back(std::move(obs));
          }
          ++round;
        } while (!done.load(std::memory_order_acquire) && round < 64);
      });
    }
    for (auto& t : readers) t.join();
    writer.join();
    std::vector<Observation> all;
    for (auto& v : per_thread) {
      for (auto& obs : v) all.push_back(std::move(obs));
    }
    return all;
  }
};

TEST_P(ConcurrentDiffTest, ReadersBracketedDuringIngestExactAfterQuiesce) {
  PowerLawParams params;
  params.num_vertices = EnvOr("APLUS_CONC_VERTICES", 700);
  params.avg_degree = static_cast<double>(EnvOr("APLUS_CONC_DEGREE", 6));
  params.preferential_fraction = 0.8;  // hubs -> long lists -> real merges
  params.seed = GetParam();
  Graph full;
  GeneratePowerLawGraph(params, &full);
  std::vector<EdgeTriple> all = SnapshotEdges(full);
  uint64_t num_vertices = full.num_vertices();

  // Hubs live at low vertex ids under preferential attachment; probe a
  // mix of hubs and ordinary vertices.
  std::vector<vertex_id_t> probes = {0, 1, 2, 3, 5, 8, 34, 144};

  size_t split = all.size() * 3 / 5;
  std::vector<EdgeTriple> base(all.begin(), all.begin() + split);
  std::vector<EdgeTriple> stream(all.begin() + split, all.end());

  for (int num_readers : {1, 4}) {
    Database db(BuildGraph(num_vertices, base));
    db.BuildPrimaryIndexes();

    std::map<vertex_id_t, Observation> pre;
    for (vertex_id_t src : probes) pre.emplace(src, Quiesced(&db, src));

    // ---- Phase 1: insert-only ingest under concurrent readers. ----
    ConcurrentIngestOptions options;
    options.max_vertices = num_vertices;
    options.max_edges = all.size();
    db.BeginConcurrentIngest(options);
    ASSERT_TRUE(db.concurrent_ingest_active());

    std::vector<Observation> observed = RunReaders(&db, num_readers, probes, [&] {
      for (const EdgeTriple& t : stream) {
        edge_id_t e = db.graph().AddEdge(t.src, t.dst, t.label);
        db.maintainer().OnEdgeInserted(e);
      }
    });
    db.EndConcurrentIngest();
    ASSERT_FALSE(db.concurrent_ingest_active());
    EXPECT_FALSE(db.index_store().HasPendingUpdates());

    std::map<vertex_id_t, Observation> post;
    for (vertex_id_t src : probes) post.emplace(src, Quiesced(&db, src));
    ValidateBracketed(observed, pre, post, "insert phase");

    // Quiesced exactness: a database built from scratch over the full
    // edge set answers identically.
    {
      Database oracle(BuildGraph(num_vertices, all));
      oracle.BuildPrimaryIndexes();
      for (vertex_id_t src : probes) {
        Observation want = Quiesced(&oracle, src);
        const Observation& got = post.at(src);
        EXPECT_EQ(got.two_hop_count, want.two_hop_count) << "src=" << src;
        EXPECT_EQ(got.one_hop_rows, want.one_hop_rows) << "src=" << src;
      }
    }

    // ---- Phase 2: delete a random sample under concurrent readers. ----
    Rng rng(GetParam() + 1000);
    std::vector<edge_id_t> doomed;
    std::vector<EdgeTriple> kept;
    for (edge_id_t e = 0; e < all.size(); ++e) {
      if (rng.NextBounded(100) < 15) {
        doomed.push_back(e);
      } else {
        kept.push_back(all[e]);
      }
    }
    ConcurrentIngestOptions del_options;
    del_options.max_vertices = num_vertices;
    del_options.max_edges = db.graph().num_edges();
    db.BeginConcurrentIngest(del_options);

    std::vector<Observation> del_observed = RunReaders(&db, num_readers, probes, [&] {
      for (edge_id_t e : doomed) db.maintainer().OnEdgeDeleted(e);
    });
    db.EndConcurrentIngest();

    std::map<vertex_id_t, Observation> final_obs;
    for (vertex_id_t src : probes) final_obs.emplace(src, Quiesced(&db, src));
    // Deletions shrink monotonically: final <= observed <= post.
    ValidateBracketed(del_observed, final_obs, post, "delete phase");

    {
      Database oracle(BuildGraph(num_vertices, kept));
      oracle.BuildPrimaryIndexes();
      for (vertex_id_t src : probes) {
        Observation want = Quiesced(&oracle, src);
        const Observation& got = final_obs.at(src);
        EXPECT_EQ(got.two_hop_count, want.two_hop_count) << "src=" << src;
        EXPECT_EQ(got.one_hop_rows, want.one_hop_rows) << "src=" << src;
      }
    }
  }
}

// Inline-merge mode (no background thread): the ingest thread itself
// compacts pages at the cost-model threshold while readers probe.
TEST_P(ConcurrentDiffTest, InlineMergeModeStaysExact) {
  PowerLawParams params;
  params.num_vertices = 400;
  params.avg_degree = 5.0;
  params.seed = GetParam() + 77;
  Graph full;
  GeneratePowerLawGraph(params, &full);
  std::vector<EdgeTriple> all = SnapshotEdges(full);
  uint64_t num_vertices = full.num_vertices();
  std::vector<vertex_id_t> probes = {0, 1, 2, 7};

  size_t split = all.size() / 2;
  Database db(BuildGraph(num_vertices, {all.begin(), all.begin() + split}));
  db.BuildPrimaryIndexes();

  ConcurrentIngestOptions options;
  options.max_vertices = num_vertices;
  options.max_edges = all.size();
  options.background_merge = false;
  db.BeginConcurrentIngest(options);

  std::vector<Observation> observed = RunReaders(&db, 2, probes, [&] {
    for (size_t i = split; i < all.size(); ++i) {
      edge_id_t e = db.graph().AddEdge(all[i].src, all[i].dst, all[i].label);
      db.maintainer().OnEdgeInserted(e);
    }
  });
  db.EndConcurrentIngest();

  Database oracle(BuildGraph(num_vertices, all));
  oracle.BuildPrimaryIndexes();
  for (vertex_id_t src : probes) {
    Observation want = Quiesced(&oracle, src);
    Observation got = Quiesced(&db, src);
    EXPECT_EQ(got.two_hop_count, want.two_hop_count) << "src=" << src;
    EXPECT_EQ(got.one_hop_rows, want.one_hop_rows) << "src=" << src;
  }
  // The bracket check still applies (pre is not captured here; use the
  // weaker upper-bound-only form via an empty lower snapshot).
  std::map<vertex_id_t, Observation> lo, hi;
  for (vertex_id_t src : probes) {
    Observation empty;
    empty.src = src;
    empty.two_hop_count = 0;
    lo.emplace(src, empty);
    hi.emplace(src, Quiesced(&db, src));
  }
  ValidateBracketed(observed, lo, hi, "inline-merge phase");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrentDiffTest, ::testing::Values(11u, 29u, 47u));

}  // namespace
}  // namespace aplus
