// Verifies that the reconstructed Figure 1 running-example graph
// satisfies every behavioural fact the paper's text states about it
// (Sections I, III-B2).

#include <gtest/gtest.h>

#include <set>

#include "datagen/example_graph.h"

namespace aplus {
namespace {

class ExampleGraphTest : public ::testing::Test {
 protected:
  ExampleGraphTest() : ex_(BuildExampleGraph()) {}

  edge_id_t T(int i) const { return ex_.transfers[i - 1]; }  // t_i
  vertex_id_t V(int i) const { return ex_.accounts[i - 1]; }  // v_i

  ExampleGraph ex_;
};

TEST_F(ExampleGraphTest, Cardinalities) {
  EXPECT_EQ(ex_.graph.num_vertices(), 8u);
  EXPECT_EQ(ex_.graph.num_edges(), 25u);  // 5 Owns + 20 Transfers
}

TEST_F(ExampleGraphTest, AliceOwnsV1) {
  // Example 1/3 start from Alice's account v1.
  vertex_id_t alice = ex_.customers[1];
  prop_key_t name = ex_.name_key;
  EXPECT_EQ(ex_.graph.vertex_props().Get(name, alice).AsString(), "Alice");
  bool owns_v1 = false;
  for (edge_id_t e : ex_.owns) {
    if (ex_.graph.edge_src(e) == alice && ex_.graph.edge_dst(e) == V(1)) owns_v1 = true;
  }
  EXPECT_TRUE(owns_v1);
}

TEST_F(ExampleGraphTest, DatesFollowOrdinals) {
  // ti.date < tj.date iff i < j.
  for (int i = 1; i <= 20; ++i) {
    EXPECT_EQ(ex_.graph.edge_props().Get(ex_.date_key, T(i)).AsInt64(), i);
  }
}

TEST_F(ExampleGraphTest, T13GoesFromV2ToV5) {
  // Example 7: "matches r1 to t13, which is from vertex v2 to v5".
  EXPECT_EQ(ex_.graph.edge_src(T(13)), V(2));
  EXPECT_EQ(ex_.graph.edge_dst(T(13)), V(5));
}

TEST_F(ExampleGraphTest, V2IncomingAndOutgoingTransfers) {
  // Section III-B2 (Redundant example): v2's incoming transfer edges are
  // {t5, t6, t15, t17} and its outgoing ones are {t7, t8, t13}.
  std::set<edge_id_t> in;
  std::set<edge_id_t> out;
  for (int i = 1; i <= 20; ++i) {
    if (ex_.graph.edge_dst(T(i)) == V(2)) in.insert(T(i));
    if (ex_.graph.edge_src(T(i)) == V(2)) out.insert(T(i));
  }
  EXPECT_EQ(in, (std::set<edge_id_t>{T(5), T(6), T(15), T(17)}));
  EXPECT_EQ(out, (std::set<edge_id_t>{T(7), T(8), T(13)}));
}

// MoneyFlow semantics of Example 7: Destination-FW adjacency of eb with
// eb.date < eadj.date and eb.amt > eadj.amt.
std::set<edge_id_t> MoneyFlowList(const ExampleGraph& ex, edge_id_t eb) {
  std::set<edge_id_t> result;
  const Graph& g = ex.graph;
  vertex_id_t anchor = g.edge_dst(eb);
  int64_t eb_date = g.edge_props().Get(ex.date_key, eb).AsInt64();
  int64_t eb_amt = g.edge_props().Get(ex.amount_key, eb).AsInt64();
  for (edge_id_t e = 0; e < g.num_edges(); ++e) {
    if (e == eb || g.edge_src(e) != anchor) continue;
    if (g.edge_label(e) != ex.dd_label && g.edge_label(e) != ex.wire_label) continue;
    int64_t date = g.edge_props().Get(ex.date_key, e).AsInt64();
    int64_t amt = g.edge_props().Get(ex.amount_key, e).AsInt64();
    if (eb_date < date && eb_amt > amt) result.insert(e);
  }
  return result;
}

TEST_F(ExampleGraphTest, MoneyFlowListOfT13IsExactlyT19) {
  // "It only scans t13's list which contains a single edge t19."
  EXPECT_EQ(MoneyFlowList(ex_, T(13)), std::set<edge_id_t>{T(19)});
}

TEST_F(ExampleGraphTest, T17AppearsInMoneyFlowListsOfT1AndT16) {
  // "edge t17 ... appears both in the adjacency list for t1 as well as
  // t16" (Section III-B2).
  EXPECT_TRUE(MoneyFlowList(ex_, T(1)).count(T(17)) > 0);
  EXPECT_TRUE(MoneyFlowList(ex_, T(16)).count(T(17)) > 0);
}

TEST_F(ExampleGraphTest, CityAndAccountProperties) {
  // Figure 1: v1 SV/SF, v2 CQ/SF, v3 SV/BOS, v4 CQ/BOS, v5 SV/LA.
  const PropertyColumn* acc = ex_.graph.vertex_props().column(ex_.acc_key);
  const PropertyColumn* city = ex_.graph.vertex_props().column(ex_.city_key);
  EXPECT_EQ(acc->GetCategoryOrNullSlot(V(1)), 1u);
  EXPECT_EQ(acc->GetCategoryOrNullSlot(V(2)), 0u);
  EXPECT_EQ(city->GetCategoryOrNullSlot(V(1)), kCitySf);
  EXPECT_EQ(city->GetCategoryOrNullSlot(V(3)), kCityBos);
  EXPECT_EQ(city->GetCategoryOrNullSlot(V(5)), kCityLa);
}

TEST_F(ExampleGraphTest, TransferLabelsAndAmounts) {
  EXPECT_EQ(ex_.graph.edge_label(T(4)), ex_.wire_label);   // t4:W
  EXPECT_EQ(ex_.graph.edge_label(T(13)), ex_.dd_label);    // t13:DD
  EXPECT_EQ(ex_.graph.edge_props().Get(ex_.amount_key, T(4)).AsInt64(), 200);
  EXPECT_EQ(ex_.graph.edge_props().Get(ex_.amount_key, T(19)).AsInt64(), 5);
  const PropertyColumn* cur = ex_.graph.edge_props().column(ex_.currency_key);
  EXPECT_EQ(cur->GetCategoryOrNullSlot(T(4)), kCurrencyEur);
  EXPECT_EQ(cur->GetCategoryOrNullSlot(T(13)), kCurrencyGbp);
}

}  // namespace
}  // namespace aplus
