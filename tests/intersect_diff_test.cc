// Differential tests for the frontier-based intersection hot path:
// hand-built EXTEND/INTERSECT / MULTI-EXTEND plans over random power-law
// graphs (which naturally contain multi-edges) are pitted against the
// independent binary-join BaselineMatcher (FlatAdjEngine), across z =
// 2..4, direct and offset lists, and sort-key-bounded ranges.

#include <gtest/gtest.h>

#include <set>

#include "baseline/flat_adj_engine.h"
#include "datagen/label_assigner.h"
#include "datagen/power_law_generator.h"
#include "index/index_store.h"
#include "query/plan.h"
#include "util/rng.h"

namespace aplus {
namespace {

class IntersectDiffTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  IntersectDiffTest() {
    PowerLawParams params;
    params.num_vertices = 900;
    params.avg_degree = 6.0;
    params.preferential_fraction = 0.8;  // hubs attract parallel edges
    params.seed = GetParam();
    GeneratePowerLawGraph(params, &graph_);
    AssignRandomLabels(2, 2, GetParam() + 100, &graph_);
    grp_key_ = graph_.AddVertexProperty("grp", ValueType::kInt64);
    PropertyColumn* col = graph_.vertex_props().mutable_column(grp_key_);
    Rng rng(GetParam() + 7);
    for (vertex_id_t v = 0; v < graph_.num_vertices(); ++v) {
      col->SetInt64(v, static_cast<int64_t>(rng.NextBounded(5)));
    }
    el0_ = graph_.catalog().FindEdgeLabel("EL0");
    el1_ = graph_.catalog().FindEdgeLabel("EL1");
    store_ = std::make_unique<IndexStore>(&graph_);
    store_->BuildPrimary(IndexConfig::Default());
    OneHopViewDef all;
    all.name = "all";
    vp_ = store_->CreateVpIndex(all, IndexConfig::Default(), Direction::kFwd);
    IndexConfig grp_config = IndexConfig::Default();
    grp_config.sorts.clear();
    grp_config.sorts.push_back({SortSource::kNbrProp, grp_key_});
    OneHopViewDef all_grp;
    all_grp.name = "all_grp";
    vp_grp_ = store_->CreateVpIndex(all_grp, grp_config, Direction::kFwd);
    engine_ = std::make_unique<FlatAdjEngine>(&graph_);
  }

  // Verifies a multi-edge exists so the differential actually covers
  // parallel-edge enumeration (preferential attachment produces them).
  bool GraphHasMultiEdge() const {
    std::set<std::pair<vertex_id_t, vertex_id_t>> seen;
    for (edge_id_t e = 0; e < graph_.num_edges(); ++e) {
      if (!seen.insert({graph_.edge_src(e), graph_.edge_dst(e)}).second) return true;
    }
    return false;
  }

  ListDescriptor FwdList(int bound_var, label_t elabel, int target_v, int target_e,
                         bool offset = false) {
    ListDescriptor desc;
    if (offset) {
      desc.source = ListDescriptor::Source::kVp;
      desc.vp = vp_;
    } else {
      desc.source = ListDescriptor::Source::kPrimary;
      desc.primary = store_->primary(Direction::kFwd);
    }
    desc.bound_var = bound_var;
    desc.cats = {elabel};
    desc.target_vertex_var = target_v;
    desc.target_edge_var = target_e;
    desc.nbr_sorted = true;
    return desc;
  }

  // Distinct sample vertices, deterministically spread over the ID space.
  std::vector<vertex_id_t> Sample(size_t z, uint64_t salt) {
    std::vector<vertex_id_t> out;
    uint64_t nv = graph_.num_vertices();
    uint64_t v = (salt * 131) % nv;
    while (out.size() < z) {
      v = (v + 37) % nv;
      if (std::find(out.begin(), out.end(), static_cast<vertex_id_t>(v)) == out.end()) {
        out.push_back(static_cast<vertex_id_t>(v));
      }
    }
    return out;
  }

  Graph graph_;
  label_t el0_ = kInvalidLabel;
  label_t el1_ = kInvalidLabel;
  prop_key_t grp_key_ = kInvalidPropKey;
  std::unique_ptr<IndexStore> store_;
  VpIndex* vp_ = nullptr;
  VpIndex* vp_grp_ = nullptr;
  std::unique_ptr<FlatAdjEngine> engine_;
};

TEST_P(IntersectDiffTest, GraphContainsMultiEdges) { EXPECT_TRUE(GraphHasMultiEdge()); }

// z bound sources intersecting into one target, direct and offset lists.
TEST_P(IntersectDiffTest, BoundSourcesMatchBaseline) {
  uint64_t total = 0;
  for (size_t z : {2, 3, 4}) {
    for (bool offset : {false, true}) {
      for (uint64_t tuple = 0; tuple < 12; ++tuple) {
        std::vector<vertex_id_t> sources = Sample(z, tuple + z * 100);
        QueryGraph query;
        std::vector<int> src_vars;
        for (size_t l = 0; l < z; ++l) {
          src_vars.push_back(
              query.AddVertex("a" + std::to_string(l), kInvalidLabel, sources[l]));
        }
        int c = query.AddVertex("c");
        std::vector<ListDescriptor> lists;
        for (size_t l = 0; l < z; ++l) {
          label_t elabel = l % 2 == 0 ? el0_ : el1_;
          query.AddEdge(src_vars[l], c, elabel, "e" + std::to_string(l));
          lists.push_back(FwdList(src_vars[l], elabel, c, static_cast<int>(l), offset));
        }
        PlanBuilder builder(&graph_, &query);
        for (int v : src_vars) builder.Scan(v);
        auto plan = builder.ExtendIntersect(lists, c).Build();
        uint64_t expected = engine_->CountMatches(query);
        EXPECT_EQ(plan->Execute(), expected)
            << "z=" << z << " offset=" << offset << " tuple=" << tuple;
        total += expected;
      }
    }
  }
  EXPECT_GT(total, 0u) << "differential never hit a non-empty intersection";
}

// Sort-key bounds (nbr-ID upper bound under the default config) against
// the equivalent c.ID predicate on the baseline side.
TEST_P(IntersectDiffTest, BoundedRangesMatchBaseline) {
  const int64_t kIdBound = static_cast<int64_t>(graph_.num_vertices() / 3);
  for (bool offset : {false, true}) {
    for (uint64_t tuple = 0; tuple < 12; ++tuple) {
      std::vector<vertex_id_t> sources = Sample(2, tuple + 900);
      QueryGraph query;
      int a0 = query.AddVertex("a0", kInvalidLabel, sources[0]);
      int a1 = query.AddVertex("a1", kInvalidLabel, sources[1]);
      int c = query.AddVertex("c");
      query.AddEdge(a0, c, el0_, "e0");
      query.AddEdge(a1, c, el1_, "e1");
      QueryComparison cmp;
      cmp.lhs = QueryPropRef{c, false, kInvalidPropKey, /*is_id=*/true};
      cmp.op = CmpOp::kLt;
      cmp.rhs_const = Value::Int64(kIdBound);
      query.AddPredicate(cmp);

      std::vector<ListDescriptor> lists = {FwdList(a0, el0_, c, 0, offset),
                                           FwdList(a1, el1_, c, 1, offset)};
      for (ListDescriptor& list : lists) {
        list.has_upper_bound = true;
        list.upper_bound = kIdBound;
        list.upper_strict = true;
      }
      PlanBuilder builder(&graph_, &query);
      auto plan = builder.Scan(a0).Scan(a1).ExtendIntersect(lists, c).Build();
      uint64_t expected = engine_->CountMatches(query);
      EXPECT_EQ(plan->Execute(), expected) << "offset=" << offset << " tuple=" << tuple;
    }
  }
}

// Full unbound triangle (Extend feeding ExtendIntersect): the frontier
// state must reset correctly across upstream tuples.
TEST_P(IntersectDiffTest, TriangleMatchesBaseline) {
  QueryGraph query;
  int a = query.AddVertex("a");
  int b = query.AddVertex("b");
  int c = query.AddVertex("c");
  query.AddEdge(a, b, el0_, "e0");
  query.AddEdge(a, c, el0_, "e1");
  query.AddEdge(b, c, el1_, "e2");
  PlanBuilder builder(&graph_, &query);
  std::vector<ListDescriptor> lists = {FwdList(a, el0_, c, 1), FwdList(b, el1_, c, 2)};
  auto plan =
      builder.Scan(a).Extend(FwdList(a, el0_, b, 0)).ExtendIntersect(lists, c).Build();
  uint64_t expected = engine_->CountMatches(query);
  EXPECT_EQ(plan->Execute(), expected);
  EXPECT_GT(expected, 0u) << "no triangles in the generated graph";
}

// Closing EXTEND (the galloping membership probe) on a 2-cycle.
TEST_P(IntersectDiffTest, ClosingProbeMatchesBaseline) {
  QueryGraph query;
  int a = query.AddVertex("a");
  int b = query.AddVertex("b");
  query.AddEdge(a, b, el0_, "e0");
  query.AddEdge(b, a, el1_, "e1");
  PlanBuilder builder(&graph_, &query);
  auto plan = builder.Scan(a)
                  .Extend(FwdList(a, el0_, b, 0))
                  .Extend(FwdList(b, el1_, a, 1), {}, /*closing=*/true)
                  .Build();
  EXPECT_EQ(plan->Execute(), engine_->CountMatches(query));
}

// MULTI-EXTEND on property-sorted offset lists vs the equivalent
// b.grp = d.grp predicate on the baseline side.
TEST_P(IntersectDiffTest, MultiExtendMatchesBaseline) {
  for (uint64_t tuple = 0; tuple < 12; ++tuple) {
    std::vector<vertex_id_t> sources = Sample(1, tuple + 500);
    QueryGraph query;
    int a = query.AddVertex("a", kInvalidLabel, sources[0]);
    int b = query.AddVertex("b");
    int d = query.AddVertex("d");
    query.AddEdge(a, b, el0_, "e0");
    query.AddEdge(a, d, el1_, "e1");
    QueryComparison cmp;
    cmp.lhs = QueryPropRef{b, false, grp_key_, false};
    cmp.op = CmpOp::kEq;
    cmp.rhs_is_const = false;
    cmp.rhs_ref = QueryPropRef{d, false, grp_key_, false};
    query.AddPredicate(cmp);

    ListDescriptor l1;
    l1.source = ListDescriptor::Source::kVp;
    l1.vp = vp_grp_;
    l1.bound_var = a;
    l1.cats = {el0_};
    l1.target_vertex_var = b;
    l1.target_edge_var = 0;
    ListDescriptor l2 = l1;
    l2.cats = {el1_};
    l2.target_vertex_var = d;
    l2.target_edge_var = 1;

    PlanBuilder builder(&graph_, &query);
    auto plan = builder.Scan(a).MultiExtend({l1, l2}).Build();
    uint64_t expected = engine_->CountMatches(query);
    EXPECT_EQ(plan->Execute(), expected) << "tuple=" << tuple;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntersectDiffTest, ::testing::Values(11u, 29u, 47u));

}  // namespace
}  // namespace aplus
