// Differential tests for the frontier-based intersection hot path:
// hand-built EXTEND/INTERSECT / MULTI-EXTEND plans over random power-law
// graphs (which naturally contain multi-edges) are pitted against the
// independent binary-join BaselineMatcher (FlatAdjEngine), across z =
// 2..4, direct and offset lists, and sort-key-bounded ranges.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/flat_adj_engine.h"
#include "datagen/label_assigner.h"
#include "datagen/power_law_generator.h"
#include "index/index_store.h"
#include "query/intersect_kernels.h"
#include "query/plan.h"
#include "util/bit_util.h"
#include "util/rng.h"

namespace aplus {
namespace {

// Every SIMD level this host can execute (always includes scalar).
// Levels above HostMaxLevel() are skipped, not clamped: exercising the
// AVX2 table on a non-AVX2 host would fault.
std::vector<simd::Level> SupportedLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::HostMaxLevel() >= simd::Level::kSse) levels.push_back(simd::Level::kSse);
  if (simd::HostMaxLevel() >= simd::Level::kAvx2) levels.push_back(simd::Level::kAvx2);
  return levels;
}

const simd::Kernels& TableFor(simd::Level level) {
  switch (level) {
    case simd::Level::kSse:
      return simd::SseKernels();
    case simd::Level::kAvx2:
      return simd::Avx2Kernels();
    default:
      return simd::ScalarKernels();
  }
}

// Restores the previously active dispatch level when a forced-level
// sweep leaves scope (other tests in the binary run after us).
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(simd::Level level) : prev_(simd::ActiveLevel()) {
    simd::SetLevel(level);
  }
  ~ScopedSimdLevel() { simd::SetLevel(prev_); }

 private:
  simd::Level prev_;
};

// Adversarial run lengths: empty, single, around every SIMD block width
// (4- and 8-lane), around the binary-search cutoff, and around larger
// powers of two.
const uint32_t kAdversarialLens[] = {0,  1,  2,  3,   7,   8,   9,   15,  16, 17,
                                     31, 32, 33, 63,  64,  65,  127, 128, 129, 255,
                                     256, 257, 511, 512, 513, 1023, 1024, 1025};

// advance_ge/advance_gt of every level vs std::lower_bound/upper_bound,
// over duplicate-heavy sorted runs, all adversarial lengths, probes on /
// between / outside the stored values, and non-zero `from` offsets.
TEST(IntersectKernelUnitTest, AdvanceMatchesStdBoundsAtEveryLevel) {
  Rng rng(71);
  for (uint32_t len : kAdversarialLens) {
    std::vector<vertex_id_t> run(len);
    vertex_id_t v = static_cast<vertex_id_t>(rng.NextBounded(4));
    for (uint32_t i = 0; i < len; ++i) {
      run[i] = v;
      v += static_cast<vertex_id_t>(rng.NextBounded(3));  // step 0 => duplicates
    }
    std::vector<vertex_id_t> probes = {0, 1, ~0u, ~0u - 1};
    for (uint32_t i = 0; i < len; i += 1 + len / 17) {
      probes.push_back(run[i]);
      probes.push_back(run[i] + 1);
      if (run[i] > 0) probes.push_back(run[i] - 1);
    }
    if (len > 0) probes.push_back(run[len - 1] + 5);
    std::vector<uint32_t> froms = {0};
    if (len > 2) froms.push_back(len / 3);
    if (len > 0) froms.push_back(len);  // from == end: must return from
    for (simd::Level level : SupportedLevels()) {
      const simd::Kernels& kern = TableFor(level);
      ASSERT_EQ(kern.level, level);
      for (uint32_t from : froms) {
        for (vertex_id_t n : probes) {
          uint32_t want_ge = static_cast<uint32_t>(
              std::lower_bound(run.begin() + from, run.end(), n) - run.begin());
          uint32_t want_gt = static_cast<uint32_t>(
              std::upper_bound(run.begin() + from, run.end(), n) - run.begin());
          EXPECT_EQ(kern.advance_ge(run.data(), from, len, n), want_ge)
              << "level=" << ToString(level) << " len=" << len << " from=" << from
              << " n=" << n;
          EXPECT_EQ(kern.advance_gt(run.data(), from, len, n), want_gt)
              << "level=" << ToString(level) << " len=" << len << " from=" << from
              << " n=" << n;
        }
      }
    }
  }
}

// Batch decoders of every level vs the scalar reference: all offset
// widths (1..4 incl. the unspecialized 3-byte path), adversarial counts,
// non-zero begin entries, and 64-bit edge IDs with high bits set (the
// AVX2 gather splits them into two 4-lane gathers).
TEST(IntersectKernelUnitTest, DecodersMatchScalarAtEveryLevel) {
  Rng rng(73);
  constexpr uint32_t kBase = 240;  // < 256 so width-1 offsets stay valid
  std::vector<vertex_id_t> base_nbrs(kBase);
  std::vector<edge_id_t> base_edges(kBase);
  for (uint32_t i = 0; i < kBase; ++i) {
    base_nbrs[i] = static_cast<vertex_id_t>(rng.Next());
    base_edges[i] = (static_cast<edge_id_t>(rng.Next()) << 32) | rng.Next();
  }
  const simd::Kernels& ref = simd::ScalarKernels();
  for (uint8_t width : {1, 2, 3, 4}) {
    for (uint32_t count : kAdversarialLens) {
      if (count > 513) continue;  // decode cost is linear; cap the sweep
      for (uint32_t begin : {0u, 1u, 7u}) {
        std::vector<uint8_t> offsets((begin + count) * width);
        for (uint32_t i = 0; i < begin + count; ++i) {
          StoreFixedWidth(offsets.data() + static_cast<size_t>(i) * width, width,
                          rng.NextBounded(kBase));
        }
        std::vector<vertex_id_t> want_n(count), got_n(count);
        std::vector<edge_id_t> want_e(count), got_e(count);
        ref.decode_nbrs(base_nbrs.data(), offsets.data(), width, begin, count,
                        want_n.data());
        ref.decode_entries(base_nbrs.data(), base_edges.data(), offsets.data(), width,
                           begin, count, want_n.data(), want_e.data());
        for (simd::Level level : SupportedLevels()) {
          const simd::Kernels& kern = TableFor(level);
          std::fill(got_n.begin(), got_n.end(), 0u);
          std::fill(got_e.begin(), got_e.end(), 0u);
          kern.decode_nbrs(base_nbrs.data(), offsets.data(), width, begin, count,
                           got_n.data());
          EXPECT_EQ(got_n, want_n) << "decode_nbrs level=" << ToString(level)
                                   << " width=" << int(width) << " count=" << count
                                   << " begin=" << begin;
          std::fill(got_n.begin(), got_n.end(), 0u);
          kern.decode_entries(base_nbrs.data(), base_edges.data(), offsets.data(), width,
                              begin, count, got_n.data(), got_e.data());
          EXPECT_EQ(got_n, want_n) << "decode_entries level=" << ToString(level)
                                   << " width=" << int(width) << " count=" << count;
          EXPECT_EQ(got_e, want_e) << "decode_entries level=" << ToString(level)
                                   << " width=" << int(width) << " count=" << count;
        }
      }
    }
  }
}

// The APLUS_SIMD knob contract: SetLevel clamps to the host maximum and
// Active() serves the installed table.
TEST(IntersectKernelUnitTest, SetLevelClampsAndInstalls) {
  simd::Level prev = simd::ActiveLevel();
  simd::Level got = simd::SetLevel(simd::Level::kAvx2);
  EXPECT_EQ(got, simd::HostMaxLevel());
  EXPECT_EQ(simd::ActiveLevel(), got);
  EXPECT_EQ(simd::Active().level, got);
  EXPECT_EQ(simd::SetLevel(simd::Level::kScalar), simd::Level::kScalar);
  EXPECT_EQ(simd::Active().level, simd::Level::kScalar);
  simd::SetLevel(prev);
}

class IntersectDiffTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  IntersectDiffTest() {
    PowerLawParams params;
    params.num_vertices = 900;
    params.avg_degree = 6.0;
    params.preferential_fraction = 0.8;  // hubs attract parallel edges
    params.seed = GetParam();
    GeneratePowerLawGraph(params, &graph_);
    AssignRandomLabels(2, 2, GetParam() + 100, &graph_);
    grp_key_ = graph_.AddVertexProperty("grp", ValueType::kInt64);
    PropertyColumn* col = graph_.vertex_props().mutable_column(grp_key_);
    Rng rng(GetParam() + 7);
    for (vertex_id_t v = 0; v < graph_.num_vertices(); ++v) {
      col->SetInt64(v, static_cast<int64_t>(rng.NextBounded(5)));
    }
    el0_ = graph_.catalog().FindEdgeLabel("EL0");
    el1_ = graph_.catalog().FindEdgeLabel("EL1");
    store_ = std::make_unique<IndexStore>(&graph_);
    store_->BuildPrimary(IndexConfig::Default());
    OneHopViewDef all;
    all.name = "all";
    vp_ = store_->CreateVpIndex(all, IndexConfig::Default(), Direction::kFwd);
    IndexConfig grp_config = IndexConfig::Default();
    grp_config.sorts.clear();
    grp_config.sorts.push_back({SortSource::kNbrProp, grp_key_});
    OneHopViewDef all_grp;
    all_grp.name = "all_grp";
    vp_grp_ = store_->CreateVpIndex(all_grp, grp_config, Direction::kFwd);
    engine_ = std::make_unique<FlatAdjEngine>(&graph_);
  }

  // Verifies a multi-edge exists so the differential actually covers
  // parallel-edge enumeration (preferential attachment produces them).
  bool GraphHasMultiEdge() const {
    std::set<std::pair<vertex_id_t, vertex_id_t>> seen;
    for (edge_id_t e = 0; e < graph_.num_edges(); ++e) {
      if (!seen.insert({graph_.edge_src(e), graph_.edge_dst(e)}).second) return true;
    }
    return false;
  }

  ListDescriptor FwdList(int bound_var, label_t elabel, int target_v, int target_e,
                         bool offset = false) {
    ListDescriptor desc;
    if (offset) {
      desc.source = ListDescriptor::Source::kVp;
      desc.vp = vp_;
    } else {
      desc.source = ListDescriptor::Source::kPrimary;
      desc.primary = store_->primary(Direction::kFwd);
    }
    desc.bound_var = bound_var;
    desc.cats = {elabel};
    desc.target_vertex_var = target_v;
    desc.target_edge_var = target_e;
    desc.nbr_sorted = true;
    return desc;
  }

  // Distinct sample vertices, deterministically spread over the ID space.
  std::vector<vertex_id_t> Sample(size_t z, uint64_t salt) {
    std::vector<vertex_id_t> out;
    uint64_t nv = graph_.num_vertices();
    uint64_t v = (salt * 131) % nv;
    while (out.size() < z) {
      v = (v + 37) % nv;
      if (std::find(out.begin(), out.end(), static_cast<vertex_id_t>(v)) == out.end()) {
        out.push_back(static_cast<vertex_id_t>(v));
      }
    }
    return out;
  }

  Graph graph_;
  label_t el0_ = kInvalidLabel;
  label_t el1_ = kInvalidLabel;
  prop_key_t grp_key_ = kInvalidPropKey;
  std::unique_ptr<IndexStore> store_;
  VpIndex* vp_ = nullptr;
  VpIndex* vp_grp_ = nullptr;
  std::unique_ptr<FlatAdjEngine> engine_;
};

TEST_P(IntersectDiffTest, GraphContainsMultiEdges) { EXPECT_TRUE(GraphHasMultiEdge()); }

// z bound sources intersecting into one target, direct and offset lists.
TEST_P(IntersectDiffTest, BoundSourcesMatchBaseline) {
  uint64_t total = 0;
  for (size_t z : {2, 3, 4}) {
    for (bool offset : {false, true}) {
      for (uint64_t tuple = 0; tuple < 12; ++tuple) {
        std::vector<vertex_id_t> sources = Sample(z, tuple + z * 100);
        QueryGraph query;
        std::vector<int> src_vars;
        for (size_t l = 0; l < z; ++l) {
          src_vars.push_back(
              query.AddVertex("a" + std::to_string(l), kInvalidLabel, sources[l]));
        }
        int c = query.AddVertex("c");
        std::vector<ListDescriptor> lists;
        for (size_t l = 0; l < z; ++l) {
          label_t elabel = l % 2 == 0 ? el0_ : el1_;
          query.AddEdge(src_vars[l], c, elabel, "e" + std::to_string(l));
          lists.push_back(FwdList(src_vars[l], elabel, c, static_cast<int>(l), offset));
        }
        PlanBuilder builder(&graph_, &query);
        for (int v : src_vars) builder.Scan(v);
        auto plan = builder.ExtendIntersect(lists, c).Build();
        uint64_t expected = engine_->CountMatches(query);
        EXPECT_EQ(plan->Execute(), expected)
            << "z=" << z << " offset=" << offset << " tuple=" << tuple;
        total += expected;
      }
    }
  }
  EXPECT_GT(total, 0u) << "differential never hit a non-empty intersection";
}

// Sort-key bounds (nbr-ID upper bound under the default config) against
// the equivalent c.ID predicate on the baseline side.
TEST_P(IntersectDiffTest, BoundedRangesMatchBaseline) {
  const int64_t kIdBound = static_cast<int64_t>(graph_.num_vertices() / 3);
  for (bool offset : {false, true}) {
    for (uint64_t tuple = 0; tuple < 12; ++tuple) {
      std::vector<vertex_id_t> sources = Sample(2, tuple + 900);
      QueryGraph query;
      int a0 = query.AddVertex("a0", kInvalidLabel, sources[0]);
      int a1 = query.AddVertex("a1", kInvalidLabel, sources[1]);
      int c = query.AddVertex("c");
      query.AddEdge(a0, c, el0_, "e0");
      query.AddEdge(a1, c, el1_, "e1");
      QueryComparison cmp;
      cmp.lhs = QueryPropRef{c, false, kInvalidPropKey, /*is_id=*/true};
      cmp.op = CmpOp::kLt;
      cmp.rhs_const = Value::Int64(kIdBound);
      query.AddPredicate(cmp);

      std::vector<ListDescriptor> lists = {FwdList(a0, el0_, c, 0, offset),
                                           FwdList(a1, el1_, c, 1, offset)};
      for (ListDescriptor& list : lists) {
        list.has_upper_bound = true;
        list.upper_bound = kIdBound;
        list.upper_strict = true;
      }
      PlanBuilder builder(&graph_, &query);
      auto plan = builder.Scan(a0).Scan(a1).ExtendIntersect(lists, c).Build();
      uint64_t expected = engine_->CountMatches(query);
      EXPECT_EQ(plan->Execute(), expected) << "offset=" << offset << " tuple=" << tuple;
    }
  }
}

// Full unbound triangle (Extend feeding ExtendIntersect): the frontier
// state must reset correctly across upstream tuples.
TEST_P(IntersectDiffTest, TriangleMatchesBaseline) {
  QueryGraph query;
  int a = query.AddVertex("a");
  int b = query.AddVertex("b");
  int c = query.AddVertex("c");
  query.AddEdge(a, b, el0_, "e0");
  query.AddEdge(a, c, el0_, "e1");
  query.AddEdge(b, c, el1_, "e2");
  PlanBuilder builder(&graph_, &query);
  std::vector<ListDescriptor> lists = {FwdList(a, el0_, c, 1), FwdList(b, el1_, c, 2)};
  auto plan =
      builder.Scan(a).Extend(FwdList(a, el0_, b, 0)).ExtendIntersect(lists, c).Build();
  uint64_t expected = engine_->CountMatches(query);
  EXPECT_EQ(plan->Execute(), expected);
  EXPECT_GT(expected, 0u) << "no triangles in the generated graph";
}

// Closing EXTEND (the galloping membership probe) on a 2-cycle.
TEST_P(IntersectDiffTest, ClosingProbeMatchesBaseline) {
  QueryGraph query;
  int a = query.AddVertex("a");
  int b = query.AddVertex("b");
  query.AddEdge(a, b, el0_, "e0");
  query.AddEdge(b, a, el1_, "e1");
  PlanBuilder builder(&graph_, &query);
  auto plan = builder.Scan(a)
                  .Extend(FwdList(a, el0_, b, 0))
                  .Extend(FwdList(b, el1_, a, 1), {}, /*closing=*/true)
                  .Build();
  EXPECT_EQ(plan->Execute(), engine_->CountMatches(query));
}

// MULTI-EXTEND on property-sorted offset lists vs the equivalent
// b.grp = d.grp predicate on the baseline side.
TEST_P(IntersectDiffTest, MultiExtendMatchesBaseline) {
  for (uint64_t tuple = 0; tuple < 12; ++tuple) {
    std::vector<vertex_id_t> sources = Sample(1, tuple + 500);
    QueryGraph query;
    int a = query.AddVertex("a", kInvalidLabel, sources[0]);
    int b = query.AddVertex("b");
    int d = query.AddVertex("d");
    query.AddEdge(a, b, el0_, "e0");
    query.AddEdge(a, d, el1_, "e1");
    QueryComparison cmp;
    cmp.lhs = QueryPropRef{b, false, grp_key_, false};
    cmp.op = CmpOp::kEq;
    cmp.rhs_is_const = false;
    cmp.rhs_ref = QueryPropRef{d, false, grp_key_, false};
    query.AddPredicate(cmp);

    ListDescriptor l1;
    l1.source = ListDescriptor::Source::kVp;
    l1.vp = vp_grp_;
    l1.bound_var = a;
    l1.cats = {el0_};
    l1.target_vertex_var = b;
    l1.target_edge_var = 0;
    ListDescriptor l2 = l1;
    l2.cats = {el1_};
    l2.target_vertex_var = d;
    l2.target_edge_var = 1;

    PlanBuilder builder(&graph_, &query);
    auto plan = builder.Scan(a).MultiExtend({l1, l2}).Build();
    uint64_t expected = engine_->CountMatches(query);
    EXPECT_EQ(plan->Execute(), expected) << "tuple=" << tuple;
  }
}

// The full operator differential, repeated with each supported kernel
// level forced (the plan tests above run at whatever APLUS_SIMD picked):
// bound-source intersections, the triangle, the closing probe, and
// MULTI-EXTEND must agree with the baseline under scalar, SSE, and AVX2
// dispatch alike.
TEST_P(IntersectDiffTest, AllKernelLevelsMatchBaseline) {
  for (simd::Level level : SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    ASSERT_EQ(simd::ActiveLevel(), level);
    uint64_t total = 0;
    for (size_t z : {2, 4}) {
      for (bool offset : {false, true}) {
        for (uint64_t tuple = 0; tuple < 6; ++tuple) {
          std::vector<vertex_id_t> sources = Sample(z, tuple + z * 100);
          QueryGraph query;
          std::vector<int> src_vars;
          for (size_t l = 0; l < z; ++l) {
            src_vars.push_back(
                query.AddVertex("a" + std::to_string(l), kInvalidLabel, sources[l]));
          }
          int c = query.AddVertex("c");
          std::vector<ListDescriptor> lists;
          for (size_t l = 0; l < z; ++l) {
            label_t elabel = l % 2 == 0 ? el0_ : el1_;
            query.AddEdge(src_vars[l], c, elabel, "e" + std::to_string(l));
            lists.push_back(FwdList(src_vars[l], elabel, c, static_cast<int>(l), offset));
          }
          PlanBuilder builder(&graph_, &query);
          for (int v : src_vars) builder.Scan(v);
          auto plan = builder.ExtendIntersect(lists, c).Build();
          uint64_t expected = engine_->CountMatches(query);
          EXPECT_EQ(plan->Execute(), expected)
              << "level=" << ToString(level) << " z=" << z << " offset=" << offset
              << " tuple=" << tuple;
          total += expected;
        }
      }
    }
    {
      QueryGraph query;
      int a = query.AddVertex("a");
      int b = query.AddVertex("b");
      int c = query.AddVertex("c");
      query.AddEdge(a, b, el0_, "e0");
      query.AddEdge(a, c, el0_, "e1");
      query.AddEdge(b, c, el1_, "e2");
      PlanBuilder builder(&graph_, &query);
      std::vector<ListDescriptor> lists = {FwdList(a, el0_, c, 1), FwdList(b, el1_, c, 2)};
      auto plan = builder.Scan(a)
                      .Extend(FwdList(a, el0_, b, 0))
                      .ExtendIntersect(lists, c)
                      .Build();
      EXPECT_EQ(plan->Execute(), engine_->CountMatches(query))
          << "triangle level=" << ToString(level);
    }
    {
      QueryGraph query;
      int a = query.AddVertex("a");
      int b = query.AddVertex("b");
      query.AddEdge(a, b, el0_, "e0");
      query.AddEdge(b, a, el1_, "e1");
      PlanBuilder builder(&graph_, &query);
      auto plan = builder.Scan(a)
                      .Extend(FwdList(a, el0_, b, 0))
                      .Extend(FwdList(b, el1_, a, 1), {}, /*closing=*/true)
                      .Build();
      EXPECT_EQ(plan->Execute(), engine_->CountMatches(query))
          << "closing probe level=" << ToString(level);
    }
    for (uint64_t tuple = 0; tuple < 6; ++tuple) {
      std::vector<vertex_id_t> sources = Sample(1, tuple + 500);
      QueryGraph query;
      int a = query.AddVertex("a", kInvalidLabel, sources[0]);
      int b = query.AddVertex("b");
      int d = query.AddVertex("d");
      query.AddEdge(a, b, el0_, "e0");
      query.AddEdge(a, d, el1_, "e1");
      QueryComparison cmp;
      cmp.lhs = QueryPropRef{b, false, grp_key_, false};
      cmp.op = CmpOp::kEq;
      cmp.rhs_is_const = false;
      cmp.rhs_ref = QueryPropRef{d, false, grp_key_, false};
      query.AddPredicate(cmp);
      ListDescriptor l1;
      l1.source = ListDescriptor::Source::kVp;
      l1.vp = vp_grp_;
      l1.bound_var = a;
      l1.cats = {el0_};
      l1.target_vertex_var = b;
      l1.target_edge_var = 0;
      ListDescriptor l2 = l1;
      l2.cats = {el1_};
      l2.target_vertex_var = d;
      l2.target_edge_var = 1;
      PlanBuilder builder(&graph_, &query);
      auto plan = builder.Scan(a).MultiExtend({l1, l2}).Build();
      EXPECT_EQ(plan->Execute(), engine_->CountMatches(query))
          << "multi-extend level=" << ToString(level) << " tuple=" << tuple;
    }
    EXPECT_GT(total, 0u) << "level=" << ToString(level)
                         << ": differential never hit a non-empty intersection";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntersectDiffTest, ::testing::Values(11u, 29u, 47u));

}  // namespace
}  // namespace aplus
