#include <gtest/gtest.h>

#include "datagen/example_graph.h"
#include "optimizer/catalog_stats.h"
#include "optimizer/index_matcher.h"

namespace aplus {
namespace {

class IndexMatcherTest : public ::testing::Test {
 protected:
  IndexMatcherTest() : ex_(BuildExampleGraph()), store_(&ex_.graph) {
    store_.BuildPrimary(IndexConfig::Default());
    stats_ = GraphStats::Compute(ex_.graph);
  }

  ExtensionPredicate NoPred() { return ExtensionPredicate(); }

  ExtensionPredicate AmountGt(int64_t threshold, int conjunct_id = 0) {
    ExtensionPredicate ext;
    ext.pred.AddConst(PropRef{PropSite::kAdjEdge, ex_.amount_key, false, false}, CmpOp::kGt,
                      Value::Int64(threshold));
    ext.query_conjunct_ids.push_back(conjunct_id);
    return ext;
  }

  ExampleGraph ex_;
  IndexStore store_;
  GraphStats stats_;
};

TEST_F(IndexMatcherTest, PrimaryAlwaysUsableWithoutSortRequirement) {
  IndexMatcher matcher(&store_, &stats_);
  ExtensionPredicate ext = NoPred();
  auto candidates =
      matcher.FindVertexLists(Direction::kFwd, kInvalidLabel, kInvalidLabel, ext, nullptr);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].desc.source, ListDescriptor::Source::kPrimary);
  // Whole-vertex slice spans label partitions -> not neighbour sorted.
  EXPECT_FALSE(candidates[0].desc.nbr_sorted);
}

TEST_F(IndexMatcherTest, EdgeLabelPinsInnermostSortedSlice) {
  IndexMatcher matcher(&store_, &stats_);
  ExtensionPredicate ext = NoPred();
  SortCriterion nbr_id{SortSource::kNbrId, kInvalidPropKey};
  auto candidates =
      matcher.FindVertexLists(Direction::kFwd, ex_.wire_label, kInvalidLabel, ext, &nbr_id);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_TRUE(candidates[0].desc.nbr_sorted);
  ASSERT_EQ(candidates[0].desc.cats.size(), 1u);
  EXPECT_EQ(candidates[0].desc.cats[0], ex_.wire_label);
  // Covered by the partition: no residual edge-label filter.
  EXPECT_EQ(candidates[0].desc.edge_label_filter, kInvalidLabel);
}

TEST_F(IndexMatcherTest, NoSortedCandidateWithoutEdgeLabel) {
  IndexMatcher matcher(&store_, &stats_);
  ExtensionPredicate ext = NoPred();
  SortCriterion nbr_id{SortSource::kNbrId, kInvalidPropKey};
  auto candidates =
      matcher.FindVertexLists(Direction::kFwd, kInvalidLabel, kInvalidLabel, ext, &nbr_id);
  EXPECT_TRUE(candidates.empty());
}

TEST_F(IndexMatcherTest, DsConfigPinsNbrLabelForSortedAccess) {
  // Ds: sort by neighbour label then neighbour ID. With a known target
  // label the candidate is effectively neighbour-ID sorted via equality
  // bounds on the leading key.
  IndexConfig ds = IndexConfig::Default();
  ds.sorts.clear();
  ds.sorts.push_back({SortSource::kNbrLabel, kInvalidPropKey});
  ds.sorts.push_back({SortSource::kNbrId, kInvalidPropKey});
  store_.BuildPrimary(ds);
  IndexMatcher matcher(&store_, &stats_);
  ExtensionPredicate ext = NoPred();
  SortCriterion nbr_id{SortSource::kNbrId, kInvalidPropKey};
  auto candidates = matcher.FindVertexLists(Direction::kFwd, ex_.wire_label,
                                            ex_.account_label, ext, &nbr_id);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_TRUE(candidates[0].desc.nbr_sorted);
  EXPECT_TRUE(candidates[0].desc.has_lower_bound);
  EXPECT_TRUE(candidates[0].desc.has_upper_bound);
  EXPECT_EQ(candidates[0].desc.lower_bound, ex_.account_label);
  EXPECT_FALSE(candidates[0].desc.lower_strict);
  // The pinned label also covers the target-label filter.
  EXPECT_EQ(candidates[0].desc.target_vertex_label, kInvalidLabel);

  // Without a target label, Ds cannot serve sorted intersections.
  auto unlabelled = matcher.FindVertexLists(Direction::kFwd, ex_.wire_label, kInvalidLabel,
                                            ext, &nbr_id);
  EXPECT_TRUE(unlabelled.empty());
}

TEST_F(IndexMatcherTest, RangePredicateBecomesSortKeyBound) {
  // Time-sorted VP index + range predicate -> binary-searchable bound
  // (the VPt mechanism of Table III).
  IndexConfig by_amount = IndexConfig::Default();
  by_amount.sorts.clear();
  by_amount.sorts.push_back({SortSource::kEdgeProp, ex_.amount_key});
  OneHopViewDef view;
  view.name = "by_amount";
  store_.CreateVpIndex(view, by_amount, Direction::kFwd);

  IndexMatcher matcher(&store_, &stats_);
  ExtensionPredicate ext;
  ext.pred.AddConst(PropRef{PropSite::kAdjEdge, ex_.amount_key, false, false}, CmpOp::kLt,
                    Value::Int64(100));
  ext.query_conjunct_ids.push_back(7);
  auto candidates =
      matcher.FindVertexLists(Direction::kFwd, ex_.wire_label, kInvalidLabel, ext, nullptr);
  bool found_bounded = false;
  for (const CandidateList& c : candidates) {
    if (c.desc.source != ListDescriptor::Source::kVp) continue;
    EXPECT_TRUE(c.desc.has_upper_bound);
    EXPECT_EQ(c.desc.upper_bound, 100);
    EXPECT_TRUE(c.desc.upper_strict);
    // The bound covers the conjunct.
    ASSERT_EQ(c.covered_conjuncts.size(), 1u);
    EXPECT_EQ(c.covered_conjuncts[0], 7);
    found_bounded = true;
  }
  EXPECT_TRUE(found_bounded);
}

TEST_F(IndexMatcherTest, ViewPredicateSubsumptionGatesVpCandidates) {
  OneHopViewDef view;
  view.name = "large";
  view.pred.AddConst(PropRef{PropSite::kAdjEdge, ex_.amount_key, false, false}, CmpOp::kGt,
                     Value::Int64(50));
  store_.CreateVpIndex(view, IndexConfig::Default(), Direction::kFwd);
  IndexMatcher matcher(&store_, &stats_);

  // Query wants amount > 100: the index (> 50) subsumes it.
  auto subsumed = matcher.FindVertexLists(Direction::kFwd, ex_.wire_label, kInvalidLabel,
                                          AmountGt(100), nullptr);
  bool has_vp = false;
  for (const CandidateList& c : subsumed) {
    if (c.desc.source == ListDescriptor::Source::kVp) has_vp = true;
  }
  EXPECT_TRUE(has_vp);

  // Query wants amount > 10: the index would miss edges in (10, 50].
  auto broader = matcher.FindVertexLists(Direction::kFwd, ex_.wire_label, kInvalidLabel,
                                         AmountGt(10), nullptr);
  for (const CandidateList& c : broader) {
    EXPECT_NE(c.desc.source, ListDescriptor::Source::kVp);
  }
}

TEST_F(IndexMatcherTest, EpCandidatesFilterByKind) {
  TwoHopViewDef view;
  view.name = "flow";
  view.kind = EpKind::kDstFwd;
  view.pred.AddRef(PropRef{PropSite::kBoundEdge, ex_.date_key, false, false}, CmpOp::kLt,
                   PropRef{PropSite::kAdjEdge, ex_.date_key, false, false});
  store_.CreateEpIndex(view, IndexConfig::Default());
  IndexMatcher matcher(&store_, &stats_);

  ExtensionPredicate ext;
  ext.pred.AddRef(PropRef{PropSite::kBoundEdge, ex_.date_key, false, false}, CmpOp::kLt,
                  PropRef{PropSite::kAdjEdge, ex_.date_key, false, false});
  ext.query_conjunct_ids.push_back(0);
  auto match = matcher.FindEdgeLists(EpKind::kDstFwd, kInvalidLabel, kInvalidLabel, ext,
                                     nullptr);
  EXPECT_EQ(match.size(), 1u);
  auto wrong_kind = matcher.FindEdgeLists(EpKind::kSrcBwd, kInvalidLabel, kInvalidLabel, ext,
                                          nullptr);
  EXPECT_TRUE(wrong_kind.empty());

  // Without the cross-edge conjunct in the query the view is not
  // subsumed.
  ExtensionPredicate none;
  EXPECT_TRUE(matcher.FindEdgeLists(EpKind::kDstFwd, kInvalidLabel, kInvalidLabel, none,
                                    nullptr)
                  .empty());
}

TEST_F(IndexMatcherTest, EstimatesReflectPartitionsAndFilters) {
  IndexMatcher matcher(&store_, &stats_);
  ExtensionPredicate ext = NoPred();
  auto whole =
      matcher.FindVertexLists(Direction::kFwd, kInvalidLabel, kInvalidLabel, ext, nullptr);
  auto wires =
      matcher.FindVertexLists(Direction::kFwd, ex_.wire_label, kInvalidLabel, ext, nullptr);
  ASSERT_EQ(whole.size(), 1u);
  ASSERT_EQ(wires.size(), 1u);
  EXPECT_LT(wires[0].est_len, whole[0].est_len);
  // Output estimate never exceeds the read estimate.
  EXPECT_LE(wires[0].est_out, wires[0].est_len + 1e-12);
}

}  // namespace
}  // namespace aplus
