#include <gtest/gtest.h>

#include <memory>

#include "datagen/example_graph.h"
#include "datagen/power_law_generator.h"
#include "index/index_store.h"
#include "query/executor.h"
#include "query/plan.h"

namespace aplus {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  PlanTest() : ex_(BuildExampleGraph()), store_(&ex_.graph) {
    store_.BuildPrimary(IndexConfig::Default());
  }

  ExampleGraph ex_;
  IndexStore store_;
};

TEST_F(PlanTest, SinkCallbackSeesBindings) {
  QueryGraph query;
  int a = query.AddVertex("a", kInvalidLabel, ex_.accounts[0]);
  int b = query.AddVertex("b");
  query.AddEdge(a, b, ex_.wire_label);
  ListDescriptor list;
  list.source = ListDescriptor::Source::kPrimary;
  list.primary = store_.primary(Direction::kFwd);
  list.bound_var = a;
  list.cats = {ex_.wire_label};
  list.target_vertex_var = b;
  list.target_edge_var = 0;
  PlanBuilder builder(&ex_.graph, &query);
  std::vector<vertex_id_t> seen;
  auto plan = builder.Scan(a).Extend(list).Build(
      [&](const MatchState& state) { seen.push_back(state.v[1]); });
  EXPECT_EQ(plan->Execute(), 3u);
  // v1's Wire targets: v2 (t17), v3 (t4), v4 (t20), neighbour-ID sorted.
  EXPECT_EQ(seen, (std::vector<vertex_id_t>{ex_.accounts[1], ex_.accounts[2], ex_.accounts[3]}));
}

TEST_F(PlanTest, DescribeListsOperators) {
  QueryGraph query;
  int a = query.AddVertex("a", ex_.account_label);
  int b = query.AddVertex("b");
  query.AddEdge(a, b);
  ListDescriptor list;
  list.source = ListDescriptor::Source::kPrimary;
  list.primary = store_.primary(Direction::kFwd);
  list.bound_var = a;
  list.target_vertex_var = b;
  list.target_edge_var = 0;
  PlanBuilder builder(&ex_.graph, &query);
  auto plan = builder.Scan(a).Extend(list).Build();
  std::string text = plan->Describe();
  EXPECT_NE(text.find("Scan"), std::string::npos);
  EXPECT_NE(text.find("Extend"), std::string::npos);
  EXPECT_NE(text.find("Sink"), std::string::npos);
}

TEST_F(PlanTest, ExecuteIsRepeatable) {
  QueryGraph query;
  int a = query.AddVertex("a", ex_.account_label);
  int b = query.AddVertex("b", ex_.account_label);
  query.AddEdge(a, b, ex_.dd_label);
  ListDescriptor list;
  list.source = ListDescriptor::Source::kPrimary;
  list.primary = store_.primary(Direction::kFwd);
  list.bound_var = a;
  list.cats = {ex_.dd_label};
  list.target_vertex_var = b;
  list.target_edge_var = 0;
  PlanBuilder builder(&ex_.graph, &query);
  auto plan = builder.Scan(a).Extend(list).Build();
  uint64_t first = plan->Execute();
  uint64_t second = plan->Execute();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, 11u);  // 11 DD transfers
  EXPECT_GE(plan->last_execute_seconds(), 0.0);
}

class BoundedRangeTest : public ::testing::Test {
 protected:
  BoundedRangeTest() {
    PowerLawParams params;
    params.num_vertices = 200;
    params.avg_degree = 20.0;
    GeneratePowerLawGraph(params, &graph_);
    score_ = graph_.AddEdgeProperty("score", ValueType::kInt64);
    PropertyColumn* col = graph_.edge_props().mutable_column(score_);
    for (edge_id_t e = 0; e < graph_.num_edges(); ++e) {
      col->SetInt64(e, static_cast<int64_t>(e % 100));
    }
    primary_ = std::make_unique<PrimaryIndex>(&graph_, Direction::kFwd);
    IndexConfig config = IndexConfig::Default();
    config.sorts.clear();
    config.sorts.push_back({SortSource::kEdgeProp, score_});
    primary_->Build(config);
  }

  ListDescriptor Desc(vertex_id_t v) {
    ListDescriptor desc;
    desc.source = ListDescriptor::Source::kPrimary;
    desc.primary = primary_.get();
    desc.bound_var = 0;
    desc.cats = {0};  // single edge label
    desc.target_vertex_var = 1;
    desc.target_edge_var = 0;
    bound_state_.Reset(2, 1);
    bound_state_.v[0] = v;
    return desc;
  }

  Graph graph_;
  prop_key_t score_;
  std::unique_ptr<PrimaryIndex> primary_;
  MatchState bound_state_;
};

TEST_F(BoundedRangeTest, UpperAndLowerBoundsMatchLinearScan) {
  const PropertyColumn* col = graph_.edge_props().column(score_);
  for (vertex_id_t v = 0; v < 50; ++v) {
    ListDescriptor desc = Desc(v);
    AdjListSlice slice = desc.Fetch(bound_state_);
    for (int64_t bound : {0, 17, 50, 99, 150}) {
      for (bool strict : {true, false}) {
        // Upper bound.
        desc.has_upper_bound = true;
        desc.upper_bound = bound;
        desc.upper_strict = strict;
        desc.has_lower_bound = false;
        auto [ub, ue] = desc.BoundedRange(slice);
        uint64_t expected = 0;
        for (uint32_t i = 0; i < slice.size(); ++i) {
          int64_t key = col->GetInt64(slice.EdgeAt(i));
          if (strict ? key < bound : key <= bound) ++expected;
        }
        EXPECT_EQ(ub, 0u);
        EXPECT_EQ(ue - ub, expected) << "v=" << v << " bound=" << bound;
        // Lower bound.
        desc.has_upper_bound = false;
        desc.has_lower_bound = true;
        desc.lower_bound = bound;
        desc.lower_strict = strict;
        auto [lb, le] = desc.BoundedRange(slice);
        expected = 0;
        for (uint32_t i = 0; i < slice.size(); ++i) {
          int64_t key = col->GetInt64(slice.EdgeAt(i));
          if (strict ? key > bound : key >= bound) ++expected;
        }
        EXPECT_EQ(le, slice.size());
        EXPECT_EQ(le - lb, expected) << "v=" << v << " bound=" << bound;
      }
    }
    // Window [lo, hi).
    desc.has_lower_bound = true;
    desc.lower_bound = 20;
    desc.lower_strict = false;
    desc.has_upper_bound = true;
    desc.upper_bound = 60;
    desc.upper_strict = true;
    auto [wb, we] = desc.BoundedRange(slice);
    uint64_t expected = 0;
    for (uint32_t i = 0; i < slice.size(); ++i) {
      int64_t key = col->GetInt64(slice.EdgeAt(i));
      if (key >= 20 && key < 60) ++expected;
    }
    EXPECT_EQ(we - wb, expected) << "v=" << v;
  }
}

TEST_F(BoundedRangeTest, NoBoundsReturnsWholeList) {
  ListDescriptor desc = Desc(3);
  AdjListSlice slice = desc.Fetch(bound_state_);
  auto [begin, end] = desc.BoundedRange(slice);
  EXPECT_EQ(begin, 0u);
  EXPECT_EQ(end, slice.size());
}

}  // namespace
}  // namespace aplus
