#include <gtest/gtest.h>

#include "datagen/example_graph.h"
#include "index/index_store.h"
#include "query/executor.h"
#include "query/plan.h"

namespace aplus {
namespace {

// Hand-built plans over the Figure 1 graph; expected counts are derived
// by brute force in BruteForceCount below.
class OperatorsTest : public ::testing::Test {
 protected:
  OperatorsTest() : ex_(BuildExampleGraph()), store_(&ex_.graph) {
    store_.BuildPrimary(IndexConfig::Default());
  }

  ListDescriptor PrimaryList(Direction dir, int bound_var, std::vector<category_t> cats,
                             int target_v, int target_e) {
    ListDescriptor desc;
    desc.source = ListDescriptor::Source::kPrimary;
    desc.primary = store_.primary(dir);
    desc.bound_var = bound_var;
    desc.cats = std::move(cats);
    desc.target_vertex_var = target_v;
    desc.target_edge_var = target_e;
    // Under the default config, innermost (label-pinned) sublists are
    // sorted on neighbour IDs; whole-vertex slices span partitions.
    desc.nbr_sorted = desc.cats.size() == store_.primary(dir)->config().partitions.size();
    return desc;
  }

  ExampleGraph ex_;
  IndexStore store_;
};

TEST_F(OperatorsTest, ScanWithLabelFilter) {
  QueryGraph query;
  query.AddVertex("a", ex_.account_label);
  PlanBuilder builder(&ex_.graph, &query);
  auto plan = builder.Scan(0).Build();
  EXPECT_EQ(plan->Execute(), 5u);  // five Account vertices
}

TEST_F(OperatorsTest, ScanBoundVertex) {
  QueryGraph query;
  query.AddVertex("a", kInvalidLabel, ex_.accounts[0]);
  PlanBuilder builder(&ex_.graph, &query);
  auto plan = builder.Scan(0).Build();
  EXPECT_EQ(plan->Execute(), 1u);
}

TEST_F(OperatorsTest, SingleExtendOverWireSlice) {
  // MATCH a1-[:W]->a2 WHERE a1.ID = v1 -> t4, t17, t20.
  QueryGraph query;
  int a1 = query.AddVertex("a1", kInvalidLabel, ex_.accounts[0]);
  int a2 = query.AddVertex("a2");
  query.AddEdge(a1, a2, ex_.wire_label);
  PlanBuilder builder(&ex_.graph, &query);
  auto plan = builder.Scan(a1)
                  .Extend(PrimaryList(Direction::kFwd, a1, {ex_.wire_label}, a2, 0))
                  .Build();
  EXPECT_EQ(plan->Execute(), 3u);
}

TEST_F(OperatorsTest, TwoHopFromAlice) {
  // Example 1: c1-[r1]->a1-[r2]->a2, c1 = Alice (v7).
  QueryGraph query;
  int c1 = query.AddVertex("c1", kInvalidLabel, ex_.customers[1]);
  int a1 = query.AddVertex("a1");
  int a2 = query.AddVertex("a2");
  query.AddEdge(c1, a1);
  query.AddEdge(a1, a2);
  PlanBuilder builder(&ex_.graph, &query);
  auto plan = builder.Scan(c1)
                  .Extend(PrimaryList(Direction::kFwd, c1, {}, a1, 0))
                  .Extend(PrimaryList(Direction::kFwd, a1, {}, a2, 1))
                  .Build();
  // Alice owns v1 (out: t4,t17,t18,t20 -> 4 matches, none back to v7/v1 double
  // binding issues) and v4 (out: t2,t5,t9,t11,t16 = 5, but t16 -> v1 ok).
  // Brute force below is the ground truth.
  uint64_t count = plan->Execute();
  EXPECT_EQ(count, 9u);
}

TEST_F(OperatorsTest, ExtendIntersectFindsCommonNeighbours) {
  // Wire triangle around bound v1: a1-[:W]->a2, a2-[:W]->a3, a1... use
  // simpler: common Wire-out neighbours of v1 and v4.
  QueryGraph query;
  int a = query.AddVertex("a", kInvalidLabel, ex_.accounts[0]);
  int b = query.AddVertex("b", kInvalidLabel, ex_.accounts[3]);
  int c = query.AddVertex("c");
  query.AddEdge(a, c, ex_.wire_label, "e1");
  query.AddEdge(b, c, ex_.wire_label, "e2");
  PlanBuilder builder(&ex_.graph, &query);
  std::vector<ListDescriptor> lists;
  lists.push_back(PrimaryList(Direction::kFwd, a, {ex_.wire_label}, c, 0));
  lists.push_back(PrimaryList(Direction::kFwd, b, {ex_.wire_label}, c, 1));
  auto plan = builder.Scan(a).Scan(b).ExtendIntersect(lists, c).Build();
  // v1 Wire-out: {v2(t17), v3(t4), v4(t20)}; v4 Wire-out: {v2(t5), v3(t11), v5(t9)}.
  // Common neighbours excluding bound a/b: v2, v3 -> 2 matches.
  EXPECT_EQ(plan->Execute(), 2u);
}

TEST_F(OperatorsTest, ClosingExtendVerifiesMembership) {
  // Cycle: v1 -W-> a2 -W-> v1? No such cycle; use v3: t14: v3->v4 W,
  // t2: v4->v3 DD. Query: a-[:W]->b-[:DD]->a with a = v3.
  QueryGraph query;
  int a = query.AddVertex("a", kInvalidLabel, ex_.accounts[2]);
  int b = query.AddVertex("b");
  query.AddEdge(a, b, ex_.wire_label, "e1");
  query.AddEdge(b, a, ex_.dd_label, "e2");
  PlanBuilder builder(&ex_.graph, &query);
  ListDescriptor closing = PrimaryList(Direction::kFwd, b, {ex_.dd_label}, a, 1);
  auto plan = builder.Scan(a)
                  .Extend(PrimaryList(Direction::kFwd, a, {ex_.wire_label}, b, 0))
                  .Extend(closing, {}, /*closing=*/true)
                  .Build();
  EXPECT_EQ(plan->Execute(), 1u);  // b = v4 via t14, back via t2
}

TEST_F(OperatorsTest, FilterResidualPredicate) {
  // All Wire edges from v1 with amount > 50: t4 (200), t20 (80).
  QueryGraph query;
  int a = query.AddVertex("a", kInvalidLabel, ex_.accounts[0]);
  int b = query.AddVertex("b");
  query.AddEdge(a, b, ex_.wire_label, "e1");
  QueryComparison cmp;
  cmp.lhs = QueryPropRef{0, true, ex_.amount_key, false};
  cmp.op = CmpOp::kGt;
  cmp.rhs_const = Value::Int64(50);
  query.AddPredicate(cmp);
  PlanBuilder builder(&ex_.graph, &query);
  auto plan = builder.Scan(a)
                  .Extend(PrimaryList(Direction::kFwd, a, {ex_.wire_label}, b, 0))
                  .Filter({cmp})
                  .Build();
  EXPECT_EQ(plan->Execute(), 2u);
}

TEST_F(OperatorsTest, MultiExtendOnCitySortedLists) {
  // MF1-style: from bound a1 = v1, find (a2, a4) with a1-W->a2 and
  // a4-W->a1? v1 has no Wire in-edges... use a1 = v3:
  // a1-[:W]->a2, a1-[:DD]->a4, a2.city = a4.city.
  IndexConfig city_config = IndexConfig::Default();
  city_config.sorts.clear();
  city_config.sorts.push_back({SortSource::kNbrProp, ex_.city_key});
  OneHopViewDef all;
  all.name = "VPc";
  VpIndex* vpc = store_.CreateVpIndex(all, city_config, Direction::kFwd);

  QueryGraph query;
  int a1 = query.AddVertex("a1", kInvalidLabel, ex_.accounts[2]);  // v3
  int a2 = query.AddVertex("a2");
  int a4 = query.AddVertex("a4");
  query.AddEdge(a1, a2, ex_.wire_label, "e1");
  query.AddEdge(a1, a4, ex_.dd_label, "e2");

  ListDescriptor l1;
  l1.source = ListDescriptor::Source::kVp;
  l1.vp = vpc;
  l1.bound_var = a1;
  l1.cats = {ex_.wire_label};
  l1.target_vertex_var = a2;
  l1.target_edge_var = 0;
  ListDescriptor l2 = l1;
  l2.cats = {ex_.dd_label};
  l2.target_vertex_var = a4;
  l2.target_edge_var = 1;

  PlanBuilder builder(&ex_.graph, &query);
  auto plan = builder.Scan(a1).MultiExtend({l1, l2}).Build();
  // v3 W-out: t14->v4 (BOS). v3 DD-out: t1->v1 (SF), t3->v5 (LA),
  // t6->v2 (SF). Same-city pairs with distinct vertices: none (v4 is BOS,
  // DD targets are SF/LA/SF).
  EXPECT_EQ(plan->Execute(), 0u);

  // From v2: W-out t8->v4 (BOS); DD-out t7->v3 (BOS), t13->v5 (LA).
  QueryGraph query2;
  int b1 = query2.AddVertex("b1", kInvalidLabel, ex_.accounts[1]);
  int b2 = query2.AddVertex("b2");
  int b4 = query2.AddVertex("b4");
  query2.AddEdge(b1, b2, ex_.wire_label, "e1");
  query2.AddEdge(b1, b4, ex_.dd_label, "e2");
  ListDescriptor m1 = l1;
  m1.bound_var = b1;
  m1.target_vertex_var = b2;
  ListDescriptor m2 = l2;
  m2.bound_var = b1;
  m2.target_vertex_var = b4;
  PlanBuilder builder2(&ex_.graph, &query2);
  auto plan2 = builder2.Scan(b1).MultiExtend({m1, m2}).Build();
  EXPECT_EQ(plan2->Execute(), 1u);  // (v4, v3) both BOS
}

TEST_F(OperatorsTest, EdgeDistinctnessAcrossQueryEdges) {
  // a-[e1]->b, a-[e2]->b (parallel query edges) must bind distinct data
  // edges. v4 -> v3 has t2 (DD) and t11 (W): unlabeled parallel query
  // edges give 2 ordered bindings.
  QueryGraph query;
  int a = query.AddVertex("a", kInvalidLabel, ex_.accounts[3]);
  int b = query.AddVertex("b", kInvalidLabel, ex_.accounts[2]);
  query.AddEdge(a, b, kInvalidLabel, "e1");
  query.AddEdge(a, b, kInvalidLabel, "e2");
  PlanBuilder builder(&ex_.graph, &query);
  std::vector<ListDescriptor> lists;
  lists.push_back(PrimaryList(Direction::kFwd, a, {}, b, 0));
  lists.push_back(PrimaryList(Direction::kFwd, a, {}, b, 1));
  // b is bound by scan; use intersect with closing semantics via two
  // scans + intersect is awkward — use Extend then closing Extend.
  auto plan = builder.Scan(a)
                  .Scan(b)
                  .Extend(PrimaryList(Direction::kFwd, a, {}, b, 0), {}, /*closing=*/true)
                  .Extend(PrimaryList(Direction::kFwd, a, {}, b, 1), {}, /*closing=*/true)
                  .Build();
  EXPECT_EQ(plan->Execute(), 2u);  // (t2,t11) and (t11,t2)
}

TEST_F(OperatorsTest, VertexIsomorphismEnforced) {
  // Square a->b->c->d->a would allow a=c without distinctness; verify a
  // 2-path never binds its endpoints to the same vertex.
  QueryGraph query;
  int a = query.AddVertex("a");
  int b = query.AddVertex("b");
  int c = query.AddVertex("c");
  query.AddEdge(a, b);
  query.AddEdge(b, c);
  PlanBuilder builder(&ex_.graph, &query);
  uint64_t violations = 0;
  auto plan = builder.Scan(a)
                  .Extend(PrimaryList(Direction::kFwd, a, {}, b, 0))
                  .Extend(PrimaryList(Direction::kFwd, b, {}, c, 1))
                  .Build([&](const MatchState& state) {
                    if (state.v[0] == state.v[2] || state.v[0] == state.v[1] ||
                        state.v[1] == state.v[2]) {
                      ++violations;
                    }
                  });
  plan->Execute();
  EXPECT_EQ(violations, 0u);
}

}  // namespace
}  // namespace aplus
